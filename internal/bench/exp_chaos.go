package bench

import (
	"fmt"

	"gimbal/internal/core"
	"gimbal/internal/fabric"
	"gimbal/internal/fault"
	"gimbal/internal/obs"
	"gimbal/internal/sim"
	"gimbal/internal/ssd"
	"gimbal/internal/workload"
)

// chaosCounter sums one registry counter across all label sets.
func chaosCounter(r *FioRun, name string) float64 {
	return obs.SumMetric(r.Reg.Snapshot(), name)
}

func init() {
	register("chaos-brownout", "Isolation under a single-SSD brownout: healthy-tenant retention per scheme", runChaosBrownoutExp)
	register("chaos-fabric", "Recovery under fabric faults: drop, delay+reorder, duplicate windows", runChaosFabricExp)
	register("chaos-disconnect", "Session teardown: credit reclaim and survivor bandwidth", runChaosDisconnectExp)
}

// chaosUnit is the chaos timeline quantum. A variable (not a constant)
// only so the determinism test can shrink it; production runs never mutate
// it. Fault windows scale with it; retry deadlines do not (they model
// initiator firmware, not experiment geometry).
var chaosUnit = 100 * sim.Millisecond

// chaosRetry is the initiator recovery policy the chaos experiments arm.
func chaosRetry() fabric.RetryPolicy {
	return fabric.RetryPolicy{
		Timeout:    3 * sim.Millisecond,
		MaxRetries: 5,
		Backoff:    250 * sim.Microsecond,
		BackoffCap: 2 * sim.Millisecond,
	}
}

// chaosSchemes is the comparison set for the chaos matrix: the paper's
// schemes plus the unprotected vanilla target.
var chaosSchemes = []fabric.Scheme{
	fabric.SchemeVanilla, fabric.SchemeReflex, fabric.SchemeFlashFQ,
	fabric.SchemeParda, fabric.SchemeGimbal,
}

// chaosGimbalCfg arms the Gimbal switch's failure handling (fail-fast +
// graceful degradation) — the recovery half of the tentpole.
func chaosGimbalCfg(tc *fabric.TargetConfig) {
	tc.Gimbal.Recovery = core.DefaultRecoveryConfig()
}

// --- chaos-brownout -------------------------------------------------------

// chaosBrownoutRow is one scheme's outcome under the brownout timeline,
// shared between the experiment and the acceptance test.
type chaosBrownoutRow struct {
	Scheme       fabric.Scheme
	PreMBps      float64 // healthy tenants, before the fault
	FaultMBps    float64 // healthy tenants, during the fault
	PostMBps     float64 // healthy tenants, after the fault
	Retention    float64 // FaultMBps / PreMBps
	RecoverMs    float64 // time after fault end to regain 95% of pre; -1 = never
	FaultedMBps  float64 // faulted tenants' goodput during the fault
	Retries      int64   // faulted sessions
	Timeouts     int64   // faulted sessions
	DegradeEnter bool    // gimbal only: did the switch degrade
}

// runChaosBrownout executes the brownout timeline for one scheme: two
// SSDs, CPU-bound healthy readers on SSD0, rate-limited QD64 readers on
// SSD1; SSD1 browns out ×8 for four units mid-run. Healthy tenants share
// only the SmartNIC core with the sick SSD — isolation means their
// bandwidth should not follow it down.
func runChaosBrownout(cx *Ctx, scheme fabric.Scheme) chaosBrownoutRow {
	u := chaosUnit
	warm := 3 * u
	faultAt := warm + 3*u // absolute
	faultEnd := faultAt + 4*u
	dur := 11 * u
	period := u / 4

	healthy := 3
	specs := make([]Spec, 0, 7)
	for i := 0; i < healthy; i++ {
		specs = append(specs, Spec{Profile: workload.Profile{
			Name: "healthy", ReadRatio: 1, IOSize: 4096, QD: 16,
			MaxConsecutiveErrs: 0,
		}, SSD: 0})
	}
	// Offered load on SSD1 (4 × 16 MB/s = 16K IOPS) fits the clean device
	// easily but exceeds its browned-out capability, so the queue collapses
	// and — without target-side degradation — attempts start blowing the
	// 3ms deadline and multiplying.
	for i := 0; i < 4; i++ {
		specs = append(specs, Spec{Profile: workload.Profile{
			Name: "faulted", ReadRatio: 1, IOSize: 4096, QD: 64,
			RateLimitBps: 16e6,
		}, SSD: 1})
	}

	type sample struct {
		at int64
		hb int64 // healthy cumulative bytes since stats reset
		fb int64 // faulted cumulative bytes
	}
	var samples []sample

	retry := chaosRetry()
	cfg := FioConfig{
		Scheme: scheme,
		Cond:   ssd.Clean,
		NumSSD: 2,
		Specs:  specs,
		Warm:   warm,
		Dur:    dur,
		Seed:   11,
		CPU:    fabric.SmartNICCPU(1),
		Retry:  &retry,
		// ×200 pins SSD1's service latency in the multi-millisecond range —
		// past the 3ms initiator deadline — so every admitted IO is doomed
		// and each one costs up to 1+MaxRetries wire attempts. The question
		// the experiment asks is who contains that multiplication.
		Faults: &fault.Plan{Seed: 11, Events: []fault.Event{
			{Kind: fault.SSDBrownout, At: faultAt, Dur: 4 * u, SSD: 1, Factor: 200},
		}},
		SamplePeriod: period,
		Sample: func(now int64, r *FioRun) {
			if now <= warm {
				return
			}
			var hb, fb int64
			for i, w := range r.Workers {
				if i < healthy {
					hb += w.Meter.Bytes()
				} else {
					fb += w.Meter.Bytes()
				}
			}
			samples = append(samples, sample{at: now, hb: hb, fb: fb})
		},
	}
	if scheme == fabric.SchemeGimbal {
		cfg.GimbalCfg = chaosGimbalCfg
	}
	run := cx.Execute(cfg)

	mbps := func(dBytes int64) float64 { return float64(dBytes) / float64(period) * 1e9 / 1e6 }
	row := chaosBrownoutRow{Scheme: scheme, RecoverMs: -1}
	var preN, faultN, postN int
	var lastH, lastF int64
	type interval struct {
		start, end int64
		h, f       float64
	}
	var ivs []interval
	for _, s := range samples {
		iv := interval{start: s.at - period, end: s.at, h: mbps(s.hb - lastH), f: mbps(s.fb - lastF)}
		lastH, lastF = s.hb, s.fb
		ivs = append(ivs, iv)
		switch {
		case iv.end <= faultAt:
			row.PreMBps += iv.h
			preN++
		case iv.start >= faultAt && iv.end <= faultEnd:
			row.FaultMBps += iv.h
			row.FaultedMBps += iv.f
			faultN++
		case iv.start >= faultEnd:
			row.PostMBps += iv.h
			postN++
		}
	}
	if preN > 0 {
		row.PreMBps /= float64(preN)
	}
	if faultN > 0 {
		row.FaultMBps /= float64(faultN)
		row.FaultedMBps /= float64(faultN)
	}
	if postN > 0 {
		row.PostMBps /= float64(postN)
	}
	if row.PreMBps > 0 {
		row.Retention = row.FaultMBps / row.PreMBps
	}
	for _, iv := range ivs {
		if iv.start >= faultEnd && iv.h >= 0.95*row.PreMBps {
			row.RecoverMs = float64(iv.end-faultEnd) / 1e6
			break
		}
	}
	for i := healthy; i < len(run.Sessions); i++ {
		row.Retries += run.Sessions[i].Retries
		row.Timeouts += run.Sessions[i].Timeouts
	}
	if scheme == fabric.SchemeGimbal {
		// The window has ended and the switch may have recovered by the end
		// of the run; the enter counter in the registry is authoritative.
		row.DegradeEnter = chaosCounter(run, "gimbal_degrade_enters_total") > 0
	}
	return row
}

func runChaosBrownoutExp(cx *Ctx) []*Result {
	res := &Result{
		ID:    "chaos-brownout",
		Title: "SSD1 browns out ×200 for 4 units; healthy tenants ride SSD0 behind the same core",
		Header: []string{"scheme", "pre_MBps", "fault_MBps", "post_MBps",
			"retention_pct", "recover_ms", "faulted_MBps", "retries", "timeouts"},
	}
	for _, scheme := range chaosSchemes {
		row := runChaosBrownout(cx, scheme)
		rec := "never"
		if row.RecoverMs >= 0 {
			rec = f0(row.RecoverMs)
		}
		res.AddRow(scheme.String(), f0(row.PreMBps), f0(row.FaultMBps), f0(row.PostMBps),
			f1(row.Retention*100), rec, f1(row.FaultedMBps),
			fmt.Sprint(row.Retries), fmt.Sprint(row.Timeouts))
	}
	res.Notef("target shape: gimbal healthy retention ≥ 90%% (credit clamp + flow control " +
		"contain the retry storm); vanilla bleeds healthy bandwidth into timed-out reissues")
	return []*Result{res}
}

// --- chaos-fabric ---------------------------------------------------------

func runChaosFabricExp(cx *Ctx) []*Result {
	u := chaosUnit
	res := &Result{
		ID:    "chaos-fabric",
		Title: "Fabric fault windows (drop 2%, delay 50µs±200µs, duplicate 1%) across schemes",
		Header: []string{"scheme", "ok_ios", "err_ios", "retries", "timeouts",
			"late_replies", "drops", "dups", "agg_MBps"},
	}
	for _, scheme := range chaosSchemes {
		retry := chaosRetry()
		nSess := 4
		var events []fault.Event
		for sidx := 0; sidx < nSess; sidx++ {
			events = append(events,
				fault.Event{Kind: fault.FabricDrop, At: 2 * u, Dur: 3 * u, Session: sidx, Prob: 0.02},
				fault.Event{Kind: fault.FabricDelay, At: 5 * u, Dur: 3 * u, Session: sidx,
					Extra: 50 * sim.Microsecond, Extra2: 200 * sim.Microsecond},
				fault.Event{Kind: fault.FabricDuplicate, At: 8 * u, Dur: 3 * u, Session: sidx, Prob: 0.01},
			)
		}
		cfg := FioConfig{
			Scheme: scheme,
			Cond:   ssd.Clean,
			NumSSD: 1,
			Specs: repeat(workload.Profile{
				Name: "rd4k", ReadRatio: 1, IOSize: 4096, QD: 16,
			}, nSess),
			Warm:   1 * u,
			Dur:    11 * u,
			Seed:   13,
			CPU:    fabric.SmartNICCPU(1),
			Retry:  &retry,
			Faults: &fault.Plan{Seed: 13, Events: events},
		}
		if scheme == fabric.SchemeGimbal {
			cfg.GimbalCfg = chaosGimbalCfg
		}
		run := cx.Execute(cfg)
		var ok, errs, retries, timeouts, late, drops, dups int64
		for _, w := range run.Workers {
			ok += w.OKIOs()
			errs += w.Errors()
		}
		for _, s := range run.Sessions {
			retries += s.Retries
			timeouts += s.Timeouts
			late += s.LateReplies
			if lf := s.LinkFaults(); lf != nil {
				drops += lf.Drops
				dups += lf.Dups
			}
		}
		res.AddRow(scheme.String(), fmt.Sprint(ok), fmt.Sprint(errs),
			fmt.Sprint(retries), fmt.Sprint(timeouts), fmt.Sprint(late),
			fmt.Sprint(drops), fmt.Sprint(dups), f0(run.AggBandwidth(nil)))
	}
	res.Notef("every dropped frame must be recovered by reissue (err_ios ≈ 0 at 2%% loss); " +
		"duplicates are absorbed by first-reply-wins dedup (late_replies > 0, no double completion)")
	return []*Result{res}
}

// --- chaos-disconnect -----------------------------------------------------

func runChaosDisconnectExp(cx *Ctx) []*Result {
	u := chaosUnit
	res := &Result{
		ID:    "chaos-disconnect",
		Title: "Tenant 2 disconnects mid-run: credit reclaim and survivor pickup (gimbal)",
		Header: []string{"scheme", "dead_credit_before", "dead_credit_after",
			"survivor_pre_MBps", "survivor_post_MBps", "aborted_ios", "reclaimed"},
	}
	warm := 2 * u
	discAt := warm + 4*u
	dur := 10 * u

	retry := chaosRetry()
	var creditBefore, creditAfter uint32
	var preBytes, preAt int64
	var samples []struct {
		at, b0, b1 int64
	}
	cfg := FioConfig{
		Scheme: fabric.SchemeGimbal,
		Cond:   ssd.Clean,
		NumSSD: 1,
		Specs: repeat(workload.Profile{
			Name: "rd128k", ReadRatio: 1, IOSize: 128 << 10, QD: 8,
			MaxConsecutiveErrs: 32, // the disconnected worker must give up
		}, 3),
		Warm:      warm,
		Dur:       dur,
		Seed:      17,
		CPU:       fabric.SmartNICCPU(1),
		Retry:     &retry,
		GimbalCfg: chaosGimbalCfg,
		Faults: &fault.Plan{Seed: 17, Events: []fault.Event{
			{Kind: fault.FabricDisconnect, At: discAt, Session: 2},
		}},
		SamplePeriod: u / 2,
		Sample: func(now int64, r *FioRun) {
			if now <= warm {
				return
			}
			samples = append(samples, struct{ at, b0, b1 int64 }{
				now, r.Workers[0].Meter.Bytes(), r.Workers[1].Meter.Bytes()})
		},
		Events: []TimedEvent{
			{At: discAt - 1, Do: func(r *FioRun) {
				sw := r.Target.Pipeline(0).Gimbal
				creditBefore = sw.Credit(r.Workers[2].Tenant())
				preBytes = r.Workers[0].Meter.Bytes() + r.Workers[1].Meter.Bytes()
				preAt = r.Loop.Now()
			}},
			{At: discAt + u, Do: func(r *FioRun) {
				sw := r.Target.Pipeline(0).Gimbal
				creditAfter = sw.Credit(r.Workers[2].Tenant())
			}},
		},
	}
	run := cx.Execute(cfg)

	// Survivor bandwidth before vs after the teardown.
	preMBps := float64(preBytes) / float64(preAt-warm) * 1e9 / 1e6
	var postBytes int64 = -1
	var postFrom int64
	for _, s := range samples {
		if s.at-u/2 >= discAt && postBytes < 0 {
			postBytes = s.b0 + s.b1
			postFrom = s.at - u/2
		}
	}
	end := samples[len(samples)-1]
	postMBps := float64(end.b0+end.b1-postBytes) / float64(end.at-postFrom) * 1e9 / 1e6

	aborted := run.Sessions[2].Errors
	reclaimed := "no"
	if creditAfter == 0 && creditBefore > 0 {
		reclaimed = "yes"
	}
	res.AddRow("gimbal", fmt.Sprint(creditBefore), fmt.Sprint(creditAfter),
		f0(preMBps), f0(postMBps), fmt.Sprint(aborted), reclaimed)
	res.Notef("the dead tenant's vslot credits return to the pool at teardown; " +
		"survivors' allotments double and their aggregate bandwidth holds or rises")
	return []*Result{res}
}
