package bench

import (
	"bytes"
	"testing"

	"gimbal/internal/sim"
)

// renderReport serializes a report for byte-identity comparison, zeroing
// the one field documented to vary between repetitions (WallSeconds).
func renderReport(t *testing.T, rp *Report) []byte {
	t.Helper()
	cp := *rp
	cp.WallSeconds = 0
	var buf bytes.Buffer
	if err := cp.WriteJSON(&buf); err != nil {
		t.Fatalf("WriteJSON: %v", err)
	}
	return buf.Bytes()
}

// shrinkEvalWindows shortens the evaluation warmup/measurement windows for
// the duration of the test so a full fig6 grid (4 cases x 4 schemes)
// completes in test time. Determinism does not depend on window length:
// every run replays the same event sequence from the same seeds.
func shrinkEvalWindows(t *testing.T) {
	t.Helper()
	savedWarm, savedDur := evalWarm, evalDur
	evalWarm = 20 * sim.Millisecond
	evalDur = 50 * sim.Millisecond
	t.Cleanup(func() { evalWarm, evalDur = savedWarm, savedDur })
}

// TestFig6Deterministic asserts two same-seed fig6 runs produce
// byte-identical reports: once serially via RunReport, and again on
// concurrent workers via RunAll. Under -race this also exercises the
// worker pool for data races between independent experiment contexts.
func TestFig6Deterministic(t *testing.T) {
	if testing.Short() {
		t.Skip("runs the full fig6 grid; skipped in -short")
	}
	shrinkEvalWindows(t)

	e, ok := Lookup("fig6")
	if !ok {
		t.Fatal("fig6 not registered")
	}

	serial1 := renderReport(t, RunReport(e))
	serial2 := renderReport(t, RunReport(e))
	if !bytes.Equal(serial1, serial2) {
		t.Fatal("two serial same-seed fig6 runs differ")
	}

	// Three copies on three workers: every parallel run must match the
	// serial bytes, and RunAll must return them in input order.
	reports, err := RunAll([]string{"fig6", "fig6", "fig6"}, 3, nil)
	if err != nil {
		t.Fatal(err)
	}
	for i, rp := range reports {
		if rp.Experiment != "fig6" {
			t.Fatalf("report %d is %q, want fig6", i, rp.Experiment)
		}
		if got := renderReport(t, rp); !bytes.Equal(serial1, got) {
			t.Fatalf("parallel fig6 run %d differs from serial run", i)
		}
	}
}

// TestRunAllEmitOrder asserts streamed emission follows input order even
// when later experiments finish first.
func TestRunAllEmitOrder(t *testing.T) {
	if testing.Short() {
		t.Skip("runs real experiments; skipped in -short")
	}
	shrinkEvalWindows(t)

	ids := []string{"ablate-bucket", "ablate-writecost"}
	var emitted []string
	reports, err := RunAll(ids, 2, func(rp *Report) { emitted = append(emitted, rp.Experiment) })
	if err != nil {
		t.Fatal(err)
	}
	if len(reports) != len(ids) {
		t.Fatalf("got %d reports, want %d", len(reports), len(ids))
	}
	for i, id := range ids {
		if reports[i].Experiment != id {
			t.Fatalf("reports[%d] = %q, want %q", i, reports[i].Experiment, id)
		}
		if emitted[i] != id {
			t.Fatalf("emitted[%d] = %q, want %q", i, emitted[i], id)
		}
	}
}

func TestRunAllUnknownID(t *testing.T) {
	if _, err := RunAll([]string{"fig6", "nope"}, 2, nil); err == nil {
		t.Fatal("unknown id accepted")
	}
}
