package bench

import (
	"math"

	"gimbal/internal/fabric"
	"gimbal/internal/fault"
	"gimbal/internal/sim"
	"gimbal/internal/ssd"
	"gimbal/internal/stats"
	"gimbal/internal/tier"
	"gimbal/internal/workload"
)

func init() {
	register("tier-sweep",
		"Fast-tier sizing: hit ratio, read tail, fairness, and NAND relief vs tier size (Zipf + brownout)",
		runTierSweepExp)
}

// Knobs are variables (not constants) only so the smoke test can shrink
// them; production runs never mutate them.
var (
	tierSweepCapacity = int64(1 << 30) // NAND usable bytes
	tierSweepFracs    = []float64{0, 0.01, 0.05, 0.10}
	tierSweepWarm     = 300 * sim.Millisecond
	tierSweepDur      = 700 * sim.Millisecond
	tierSweepReaders  = 3
	tierSweepWriters  = 2
	tierSweepTheta    = 0.99
	// Writers offer a fixed load (per the paper's rate-limited workers)
	// rather than a closed loop: absorbing a write must relieve NAND, not
	// invite a faster writer to re-saturate it.
	tierSweepWriteBps = int64(48e6)
	// A longer linger than the device default maximizes overwrite
	// absorption under the skewed write stream.
	tierSweepLinger = 10 * sim.Millisecond
)

// tierSweepSpecs is the shared tenant mix: skewed 4KB readers plus skewed
// 4KB writers on a fragmented device — the regime where NAND GC sets the
// read tail and a small fast tier can absorb most of the traffic.
func tierSweepSpecs() []Spec {
	specs := make([]Spec, 0, tierSweepReaders+tierSweepWriters)
	for i := 0; i < tierSweepReaders; i++ {
		specs = append(specs, Spec{Profile: workload.Profile{
			Name: "zrd4k", ReadRatio: 1, IOSize: 4096, QD: 32, Zipf: tierSweepTheta,
		}})
	}
	for i := 0; i < tierSweepWriters; i++ {
		specs = append(specs, Spec{Profile: workload.Profile{
			Name: "zwr4k", ReadRatio: 0, IOSize: 4096, QD: 8, Zipf: tierSweepTheta,
			RateLimitBps: tierSweepWriteBps,
		}})
	}
	return specs
}

// tierSweepConfig builds one run at the given fast-tier fraction of NAND
// capacity; frac 0 is the untiered baseline (Tier nil — the exact seed
// datapath, not a zero-sized cache).
func tierSweepConfig(frac float64) FioConfig {
	params := ssd.DCT983()
	params.UsableBytes = tierSweepCapacity
	cfg := FioConfig{
		Scheme: fabric.SchemeGimbal,
		Cond:   ssd.Fragmented,
		Params: params,
		Specs:  tierSweepSpecs(),
		Warm:   tierSweepWarm,
		Dur:    tierSweepDur,
		Seed:   23,
	}
	if frac > 0 {
		tp := tier.DefaultParams(int64(frac * float64(tierSweepCapacity)))
		tp.DestageDelay = tierSweepLinger
		cfg.Tier = &tp
	}
	return cfg
}

// tierHitPct returns the tier read hit ratio in percent, or -1 untiered.
func tierHitPct(r *FioRun) float64 {
	if len(r.Tiers) == 0 {
		return -1
	}
	s := r.Tiers[0].Stats()
	if s.Hits+s.Misses == 0 {
		return 0
	}
	return float64(s.Hits) / float64(s.Hits+s.Misses) * 100
}

// tierWriteBackPct returns the fraction of writes absorbed by the tier in
// percent, or -1 untiered.
func tierWriteBackPct(r *FioRun) float64 {
	if len(r.Tiers) == 0 {
		return -1
	}
	s := r.Tiers[0].Stats()
	if s.WriteBacks+s.WriteArounds == 0 {
		return 0
	}
	return float64(s.WriteBacks) / float64(s.WriteBacks+s.WriteArounds) * 100
}

// tierReadP999 merges the reader histograms and returns the p99.9 (ns).
func tierReadP999(r *FioRun) int64 {
	h := stats.NewHistogram()
	for _, w := range r.Workers {
		if w.Profile().ReadRatio == 1 {
			h.Merge(w.ReadLat)
		}
	}
	return h.P999()
}

// tierFairDevPct measures fairness as the worst relative deviation of any
// worker's bandwidth from its group (reader/writer) mean, in percent.
// Identical tenants should deliver identical shares; a tier must not let
// whoever's hot set got resident first starve the rest.
func tierFairDevPct(r *FioRun) float64 {
	worst := 0.0
	for _, readers := range []bool{true, false} {
		var ws []*workload.Worker
		for _, w := range r.Workers {
			if (w.Profile().ReadRatio == 1) == readers {
				ws = append(ws, w)
			}
		}
		var sum float64
		for _, w := range ws {
			sum += w.BandwidthMBps()
		}
		if len(ws) == 0 || sum == 0 {
			continue
		}
		mean := sum / float64(len(ws))
		for _, w := range ws {
			if d := math.Abs(w.BandwidthMBps()-mean) / mean; d > worst {
				worst = d
			}
		}
	}
	return worst * 100
}

func pctOrDash(v float64) string {
	if v < 0 {
		return "-"
	}
	return f1(v)
}

func runTierSweepExp(cx *Ctx) []*Result {
	sweep := &Result{
		ID:    "tier-sweep",
		Title: "Fast-tier size sweep under Zipf-0.99 readers + writers on fragmented NAND",
		Header: []string{"tier_pct", "hit_pct", "wb_pct", "p999_rd_us",
			"rd_MBps", "wr_MBps", "fair_dev_pct", "nand_wa", "wcost"},
	}
	for _, frac := range tierSweepFracs {
		cfg := tierSweepConfig(frac)
		// The estimate decays once the run drains; sample its peak during
		// the measured window so the column shows the model responding.
		var wcost float64
		cfg.SamplePeriod = cfg.Dur / 16
		cfg.Sample = func(now int64, r *FioRun) {
			if now <= cfg.Warm {
				return
			}
			if c := r.Target.Pipeline(0).Gimbal.WriteCost(); c > wcost {
				wcost = c
			}
		}
		run := cx.Execute(cfg)
		rd := run.AggBandwidth(func(w *workload.Worker) bool { return w.Profile().ReadRatio == 1 })
		wr := run.AggBandwidth(func(w *workload.Worker) bool { return w.Profile().ReadRatio == 0 })
		sweep.AddRow(f1(frac*100), pctOrDash(tierHitPct(run)), pctOrDash(tierWriteBackPct(run)),
			us(tierReadP999(run)), f0(rd), f0(wr), f1(tierFairDevPct(run)),
			f2(run.Devices[0].WriteAmplification()), f2(wcost))
	}
	sweep.Notef("target shape: hit ratio tracks the Zipf mass of the resident fraction; " +
		"p99.9 read latency at 10%% tier ≥2x better than untiered (write absorption relieves GC); " +
		"fairness deviation no worse than untiered")

	chaos := &Result{
		ID:    "tier-sweep-brownout",
		Title: "NAND brownout ×8 mid-run: does the tier hold the read path up?",
		Header: []string{"tier_pct", "hit_pct", "p999_rd_us", "pre_MBps",
			"fault_MBps", "retention_pct"},
	}
	for _, frac := range []float64{0, 0.10} {
		chaos.AddRow(tierBrownoutRow(cx, frac)...)
	}
	chaos.Notef("fault_MBps = reader bandwidth during the brownout; the tier is stacked " +
		"above the fault wrapper, so resident reads ride out the slowdown and the tiered " +
		"run delivers more during the fault; the bypass window (tier faulted too) must " +
		"degrade to NAND, not wedge")
	return []*Result{sweep, chaos}
}

// tierBrownoutRow runs the chaos timeline at one tier fraction: the NAND
// browns out ×8 for the middle half of the measured window, and — tiered
// runs only — a short tier-bypass fault overlaps the end of the brownout
// to exercise the degraded path.
func tierBrownoutRow(cx *Ctx, frac float64) []string {
	cfg := tierSweepConfig(frac)
	warm, dur := cfg.Warm, cfg.Dur
	faultAt := warm + dur/4
	faultDur := dur / 2
	events := []fault.Event{
		{Kind: fault.SSDBrownout, At: faultAt, Dur: faultDur, SSD: 0, Factor: 8},
	}
	if frac > 0 {
		events = append(events, fault.Event{
			Kind: fault.SSDTierBypass, At: faultAt + faultDur*3/4, Dur: faultDur / 4, SSD: 0,
		})
	}
	cfg.Faults = &fault.Plan{Seed: 23, Events: events}

	period := dur / 16
	var preBytes, faultBytes int64
	var preNs, faultNs int64
	var last int64
	var lastAt int64
	cfg.SamplePeriod = period
	cfg.Sample = func(now int64, r *FioRun) {
		if now <= warm {
			last, lastAt = 0, warm
			return
		}
		var b int64
		for _, w := range r.Workers {
			if w.Profile().ReadRatio == 1 {
				b += w.Meter.Bytes()
			}
		}
		d, dt := b-last, now-lastAt
		last, lastAt = b, now
		switch {
		case now <= faultAt:
			preBytes += d
			preNs += dt
		case now > faultAt && now <= faultAt+faultDur:
			faultBytes += d
			faultNs += dt
		}
	}
	run := cx.Execute(cfg)

	mbps := func(b, ns int64) float64 {
		if ns == 0 {
			return 0
		}
		return float64(b) / float64(ns) * 1e9 / 1e6
	}
	pre, during := mbps(preBytes, preNs), mbps(faultBytes, faultNs)
	retention := 0.0
	if pre > 0 {
		retention = during / pre * 100
	}
	return []string{f1(frac * 100), pctOrDash(tierHitPct(run)), us(tierReadP999(run)),
		f0(pre), f0(during), f1(retention)}
}
