package bench

import (
	"strings"
	"testing"

	"gimbal/internal/ssd"
)

func TestResultTableRendering(t *testing.T) {
	r := &Result{
		ID:     "figX",
		Title:  "demo",
		Header: []string{"col", "value"},
	}
	r.AddRow("a", "1")
	r.AddRow("longer-name", "22")
	r.Notef("a note with %d parts", 2)
	var sb strings.Builder
	r.WriteTable(&sb)
	out := sb.String()
	for _, want := range []string{"figX", "demo", "col", "longer-name", "note: a note with 2 parts"} {
		if !strings.Contains(out, want) {
			t.Fatalf("table output missing %q:\n%s", want, out)
		}
	}
}

func TestResultCSVRendering(t *testing.T) {
	r := &Result{ID: "figY", Title: "demo", Header: []string{"a", "b"}}
	r.AddRow("1", "2")
	var sb strings.Builder
	r.WriteCSV(&sb)
	out := sb.String()
	if !strings.Contains(out, "a,b\n1,2\n") {
		t.Fatalf("csv output wrong:\n%s", out)
	}
}

func TestRegistryCoversEveryPaperArtifact(t *testing.T) {
	// Every table and figure of the evaluation (plus appendix) must have a
	// registered experiment (Table 2 is qualitative, documented in
	// EXPERIMENTS.md; Table 1 splits into tab1a/tab1b).
	want := []string{
		"fig2", "fig3", "fig4", "fig6", "fig7", "fig8", "fig9",
		"fig10", "fig11", "fig12", "fig13",
		"fig14", "fig15", "fig16", "fig17", "fig18",
		"fig19", "fig20", "fig21", "fig22", "fig23",
		"fig58", "tab1a", "tab1b",
		"ablate-thresh", "ablate-bucket", "ablate-writecost",
		"ablate-vslot", "ablate-credit",
	}
	for _, id := range want {
		if _, ok := Lookup(id); !ok {
			t.Errorf("experiment %s not registered", id)
		}
	}
	if len(IDs()) < len(want) {
		t.Errorf("registry has %d experiments, want >= %d", len(IDs()), len(want))
	}
}

func TestLookupUnknown(t *testing.T) {
	if _, ok := Lookup("nope"); ok {
		t.Fatal("unknown id resolved")
	}
}

func TestFormatHelpers(t *testing.T) {
	if f0(1.6) != "2" || f1(1.25) != "1.2" || f2(1.259) != "1.26" {
		t.Fatalf("float formatting wrong: %s %s %s", f0(1.6), f1(1.25), f2(1.259))
	}
	if us(1500) != "2" || us(1_000_000) != "1000" {
		t.Fatalf("us formatting wrong: %s %s", us(1500), us(1_000_000))
	}
}

func TestStandaloneMaxMemoized(t *testing.T) {
	// Second call with identical parameters must hit the cache (pure map
	// lookup — this test would take seconds otherwise). Use a small device
	// to keep the first (measured) call quick.
	params := ssd.DCT983()
	params.UsableBytes = 512 << 20
	params.Name = "memo-test"
	p := read4K()
	cx := NewCtx()
	v1 := cx.StandaloneMax(p, ssd.Clean, params)
	v2 := cx.StandaloneMax(p, ssd.Clean, params)
	if v1 != v2 {
		t.Fatalf("memoized values differ: %v vs %v", v1, v2)
	}
	if v1 <= 0 {
		t.Fatalf("standalone max = %v", v1)
	}
}
