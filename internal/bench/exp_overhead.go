package bench

import (
	"fmt"
	"time"

	"gimbal/internal/baseline/vanilla"
	"gimbal/internal/core"
	"gimbal/internal/nvme"
	"gimbal/internal/sim"
	"gimbal/internal/ssd"
)

func init() {
	register("tab1a", "Per-IO pipeline cost: Gimbal vs vanilla target (wall-clock ns)", runTab1a)
	register("tab1b", "Max IOPS with a NULL device: Gimbal vs vanilla (single thread)", runTab1b)
}

// MeasureOverhead drives ops 4KB reads through a scheduler over a NULL
// device on a virtual-time loop and reports the measured wall-clock cost
// per IO of the full submit+complete software path — the Table 1 analog
// for this implementation. The simulation loop cost is identical across
// schemes, so relative overheads are directly comparable to the paper's
// cycle counts.
func MeasureOverhead(gimbal bool, workers, qd, ops int) (nsPerIO float64) {
	loop := sim.NewLoop()
	dev := ssd.NewNull(loop, 8<<30, 100) // tiny delay: forces event-driven completion
	var sched nvme.Scheduler
	if gimbal {
		sched = core.New(loop, dev, core.DefaultConfig())
	} else {
		sched = vanilla.New(loop, dev)
	}
	remaining := ops
	done := 0
	rng := sim.NewRNG(3)
	var submit func(t *nvme.Tenant)
	submit = func(t *nvme.Tenant) {
		if remaining <= 0 {
			return
		}
		remaining--
		io := &nvme.IO{
			Op:     nvme.OpRead,
			Offset: rng.Int63n(1<<20) * 4096,
			Size:   4096,
			Tenant: t,
		}
		io.Done = func(_ *nvme.IO, _ nvme.Completion) {
			done++
			submit(t)
		}
		sched.Enqueue(io)
	}
	tenants := make([]*nvme.Tenant, workers)
	for i := range tenants {
		tenants[i] = nvme.NewTenant(i, fmt.Sprintf("t%d", i))
		sched.Register(tenants[i])
	}
	start := time.Now()
	for _, t := range tenants {
		for i := 0; i < qd; i++ {
			submit(t)
		}
	}
	loop.Run()
	el := time.Since(start)
	if done == 0 {
		return 0
	}
	return float64(el.Nanoseconds()) / float64(done)
}

func runTab1a(cx *Ctx) []*Result {
	res := &Result{
		ID:     "tab1a",
		Title:  "Submit+complete pipeline cost per IO (4KB read, NULL device)",
		Header: []string{"setting", "vanilla_ns", "gimbal_ns", "overhead"},
	}
	const ops = 300_000
	cases := []struct {
		name        string
		workers, qd int
	}{
		{"1 worker QD1", 1, 1},
		{"16 workers QD32", 16, 32},
	}
	for _, c := range cases {
		v := MeasureOverhead(false, c.workers, c.qd, ops)
		g := MeasureOverhead(true, c.workers, c.qd, ops)
		res.AddRow(c.name, f0(v), f0(g), fmt.Sprintf("+%.1f%%", (g/v-1)*100))
	}
	res.Notef("paper: +62.5%%/+37.5%% submit/complete cycles at QD1, +42.9%%/+47.1%% at " +
		"16xQD32 (ARM A72 cycles); here the combined wall-clock path is compared")
	return []*Result{res}
}

func runTab1b(cx *Ctx) []*Result {
	res := &Result{
		ID:     "tab1b",
		Title:  "NULL-device max IOPS (single-threaded pipeline)",
		Header: []string{"scheme", "KIOPS"},
	}
	const ops = 500_000
	v := MeasureOverhead(false, 8, 32, ops)
	g := MeasureOverhead(true, 8, 32, ops)
	res.AddRow("vanilla", f0(1e6/v))
	res.AddRow("gimbal", f0(1e6/g))
	res.Notef("paper: vanilla 937 KIOPS vs Gimbal 821 KIOPS on one ARM core (-12.4%%); " +
		"the relative gap is the comparable quantity")
	return []*Result{res}
}
