package bench

import (
	"encoding/binary"
	"fmt"
	"io"
	"net"
	"runtime"
	"sync"
	"sync/atomic"
	"time"

	"gimbal/internal/fabric"
	"gimbal/internal/nvme"
	"gimbal/internal/sim"
	"gimbal/internal/ssd"
)

func init() {
	register("live-tcp", "Live loopback-TCP IOPS: single-lock datapath vs per-SSD reactors", runLiveTCP)
}

// Live measurement windows. Unlike the simulated experiments these are
// wall-clock durations, so live-tcp reports are NOT byte-identical across
// runs — keep it out of determinism goldens.
var (
	liveTCPWarm    = 100 * time.Millisecond
	liveTCPMeasure = 400 * time.Millisecond
)

const (
	liveTCPSSDs  = 8
	liveTCPConns = 8
	liveTCPQD    = 32
	liveTCPIO    = 4096
)

// liveTCPServer abstracts the two datapaths under test.
type liveTCPServer interface {
	Addr() string
	Close() error
}

// startLiveTCP brings up a NULL-device target (zero service time,
// synchronous completion — all measured cost is transport + scheduling)
// on the requested datapath. reactors == 0 is the legacy single-lock
// ServeTCP baseline.
func startLiveTCP(reactors int) (liveTCPServer, error) {
	cfg := fabric.DefaultTargetConfig(fabric.SchemeVanilla)
	if reactors == 0 {
		rs := sim.NewRealScheduler()
		devs := make([]ssd.Device, liveTCPSSDs)
		for i := range devs {
			devs[i] = ssd.NewNull(rs, 256<<20, 0)
		}
		return fabric.ServeTCP(rs, fabric.NewTarget(rs, devs, cfg), "127.0.0.1:0")
	}
	shards := sim.NewRealShards(reactors)
	devs := make([]ssd.Device, liveTCPSSDs)
	for i := range devs {
		devs[i] = ssd.NewNull(shards.Shard(i%shards.N()), 256<<20, 0)
	}
	return fabric.ServeTCPReactors(shards, fabric.NewReactorTarget(shards, devs, cfg), "127.0.0.1:0")
}

// liveTCPClient is one closed-loop pipelined initiator: it keeps
// liveTCPQD 4KB reads in flight on one connection against one namespace
// and counts completions.
func liveTCPClient(addr string, nsid uint8, count *atomic.Int64, stop *atomic.Bool, wg *sync.WaitGroup, errs chan<- error) {
	defer wg.Done()
	conn, err := net.Dial("tcp", addr)
	if err != nil {
		errs <- err
		return
	}
	defer conn.Close()
	cmd := fabric.AppendCommand(
		binary.BigEndian.AppendUint32(nil, uint32(fabric.CommandWireLen(0))),
		&fabric.CommandCapsule{Opcode: nvme.OpRead, CID: 1, NSID: nsid, Length: liveTCPIO},
	)
	rsp := make([]byte, 4+fabric.ResponseWireLen(liveTCPIO))
	for i := 0; i < liveTCPQD; i++ {
		if _, err := conn.Write(cmd); err != nil {
			errs <- err
			return
		}
	}
	for !stop.Load() {
		if _, err := io.ReadFull(conn, rsp); err != nil {
			errs <- err
			return
		}
		count.Add(1)
		if _, err := conn.Write(cmd); err != nil {
			errs <- err
			return
		}
	}
	// Drain the pipeline so the server sees a clean teardown.
	for i := 0; i < liveTCPQD; i++ {
		if _, err := io.ReadFull(conn, rsp); err != nil {
			return
		}
	}
}

// measureLiveTCP runs one scaling point and returns measured IOPS.
func measureLiveTCP(reactors int) (float64, error) {
	srv, err := startLiveTCP(reactors)
	if err != nil {
		return 0, err
	}
	defer srv.Close()
	var count atomic.Int64
	var stop atomic.Bool
	var wg sync.WaitGroup
	errs := make(chan error, liveTCPConns)
	for i := 0; i < liveTCPConns; i++ {
		wg.Add(1)
		go liveTCPClient(srv.Addr(), uint8(i%liveTCPSSDs), &count, &stop, &wg, errs)
	}
	time.Sleep(liveTCPWarm)
	c0 := count.Load()
	time.Sleep(liveTCPMeasure)
	c1 := count.Load()
	stop.Store(true)
	wg.Wait()
	select {
	case err := <-errs:
		return 0, err
	default:
	}
	return float64(c1-c0) / liveTCPMeasure.Seconds(), nil
}

func runLiveTCP(cx *Ctx) []*Result {
	res := &Result{
		ID:     "live-tcp",
		Title:  "Aggregate 4KB read IOPS over loopback TCP, NULL devices (wall-clock, not deterministic)",
		Header: []string{"datapath", "reactors", "conns", "qd", "iops", "vs_baseline"},
	}
	var baseline float64
	for _, r := range []int{0, 1, 2, 4, 8} {
		iops, err := measureLiveTCP(r)
		if err != nil {
			res.Notef("reactors=%d failed: %v", r, err)
			continue
		}
		name := "reactors"
		if r == 0 {
			name = "single-lock"
			baseline = iops
		}
		speedup := "1.00x"
		if r != 0 && baseline > 0 {
			speedup = fmt.Sprintf("%.2fx", iops/baseline)
		}
		res.AddRow(name, fmt.Sprint(r), fmt.Sprint(liveTCPConns), fmt.Sprint(liveTCPQD),
			fmt.Sprintf("%.0f", iops), speedup)
	}
	res.Notef("GOMAXPROCS=%d NumCPU=%d; reactor scaling needs real cores — on a single-core host "+
		"all shards timeshare one CPU and the curve is flat by construction",
		runtime.GOMAXPROCS(0), runtime.NumCPU())
	return []*Result{res}
}
