package bench

import (
	"fmt"
	"sort"

	"gimbal/internal/fabric"
	"gimbal/internal/fault"
	"gimbal/internal/obs"
	"gimbal/internal/sim"
	"gimbal/internal/ssd"
	"gimbal/internal/workload"
)

func init() {
	register("slo-attrib", "Tail-latency attribution: per-tenant p99.9 phase decomposition under the brownout timeline", runSLOAttribExp)
}

// sloAttribTail summarizes one tenant's p99.9 tail: the threshold itself
// plus the mean decomposed spans across the tail set (the IOs at or above
// the threshold) — "where does a tail IO's time go?".
type sloAttribTail struct {
	ios    int
	p999   int64
	phases map[string]int64 // mean ns per phase across the tail set
}

// tailDecompose computes a tenant's p99.9 attribution from its traces.
func tailDecompose(traces []obs.IOTrace) sloAttribTail {
	out := sloAttribTail{ios: len(traces), phases: map[string]int64{}}
	if len(traces) == 0 {
		return out
	}
	totals := make([]int64, len(traces))
	for i := range traces {
		totals[i] = traces[i].Total()
	}
	sort.Slice(totals, func(i, j int) bool { return totals[i] < totals[j] })
	idx := (len(totals) - 1) * 999 / 1000
	out.p999 = totals[idx]
	n := 0
	for i := range traces {
		t := &traces[i]
		if t.Total() < out.p999 {
			continue
		}
		n++
		for _, name := range obs.TracePhases {
			ns, _ := t.Phase(name)
			out.phases[name] += ns
		}
	}
	if n > 0 {
		for _, name := range obs.TracePhases {
			out.phases[name] /= int64(n)
		}
	}
	return out
}

// runSLOAttribExp reruns the chaos-brownout timeline (gimbal only, recovery
// armed) with full span tracing and the SLO engine attached, then answers
// the question the brownout rows leave open: WHERE did the faulted tenants'
// tail go, and how fast did their error budget burn while the healthy
// tenants' stayed intact. One row per tenant: IO count, the p99.9 total,
// the mean phase decomposition across the p99.9 tail set
// (fabric/queue/vslot/pacing/device/gc/complete), the SLO met fraction,
// and the burn rate over the longest window at the moment the fault window
// closed.
func runSLOAttribExp(cx *Ctx) []*Result {
	u := chaosUnit
	warm := 3 * u
	faultAt := warm + 3*u
	faultEnd := faultAt + 4*u
	dur := 11 * u

	healthy := 3
	specs := make([]Spec, 0, 7)
	for i := 0; i < healthy; i++ {
		specs = append(specs, Spec{Profile: workload.Profile{
			Name: "healthy", ReadRatio: 1, IOSize: 4096, QD: 16,
		}, SSD: 0})
	}
	for i := 0; i < 4; i++ {
		specs = append(specs, Spec{Profile: workload.Profile{
			Name: "faulted", ReadRatio: 1, IOSize: 4096, QD: 64,
			RateLimitBps: 16e6,
		}, SSD: 1})
	}

	retry := chaosRetry()
	// A 2ms end-to-end objective: comfortably met on the clean device,
	// hopeless during the ×200 brownout — so the burn-rate columns separate
	// the two tenant classes sharply.
	slo := obs.SLO{LatencyTargetNs: 2 * sim.Millisecond, LatencyGoal: 0.999}
	// Burn-rate snapshot per tenant (Spec order), taken while the fault
	// window is still the recent past.
	burnAtFaultEnd := make([]float64, len(specs))
	cfg := FioConfig{
		Scheme:    fabric.SchemeGimbal,
		Cond:      ssd.Clean,
		NumSSD:    2,
		Specs:     specs,
		Warm:      warm,
		Dur:       dur,
		Seed:      11,
		CPU:       fabric.SmartNICCPU(1),
		Retry:     &retry,
		GimbalCfg: chaosGimbalCfg,
		Faults: &fault.Plan{Seed: 11, Events: []fault.Event{
			{Kind: fault.SSDBrownout, At: faultAt, Dur: 4 * u, SSD: 1, Factor: 200},
		}},
		Trace: &obs.TracerConfig{Capacity: 1 << 17, Mode: obs.TraceFull},
		SLO:   &slo,
		Events: []TimedEvent{
			{At: faultEnd, Do: func(r *FioRun) {
				now := r.Loop.Now()
				wins := r.Hub.SLO.Windows()
				for i, w := range r.Workers {
					st := r.Hub.SLO.Tenant(w.Tenant().Name)
					burnAtFaultEnd[i] = st.BurnRate(len(wins)-1, now)
				}
			}},
		},
	}
	run := cx.Execute(cfg)

	// Bucket the captured traces by tenant, preserving capture order.
	byTenant := map[string][]obs.IOTrace{}
	for _, tr := range run.Hub.Ring().Snapshot() {
		byTenant[tr.Tenant] = append(byTenant[tr.Tenant], tr)
	}

	us := func(ns int64) string { return f1(float64(ns) / 1e3) }
	res := &Result{
		ID:    "slo-attrib",
		Title: "p99.9 attribution under chaos-brownout (gimbal, full tracing): mean span decomposition across each tenant's p99.9 tail",
		Header: []string{"tenant", "ios", "p999_us", "fabric_us", "queue_us",
			"vslot_us", "pacing_us", "device_us", "gc_us", "complete_us",
			"met_pct", "burn@fault_end"},
	}
	// Workers iterate in Spec order — never the map — so the table is
	// byte-identical run to run regardless of -parallel.
	for i, w := range run.Workers {
		name := w.Tenant().Name
		tail := tailDecompose(byTenant[name])
		st := run.Hub.SLO.Tenant(name)
		res.AddRow(name, fmt.Sprint(tail.ios), us(tail.p999),
			us(tail.phases["fabric"]), us(tail.phases["queue"]),
			us(tail.phases["vslot"]), us(tail.phases["pacing"]),
			us(tail.phases["device"]), us(tail.phases["gc"]),
			us(tail.phases["complete"]),
			f1(st.MetFraction()*100), f1(burnAtFaultEnd[i]))
	}
	if ev := run.Hub.Events; ev != nil {
		kinds := map[string]bool{}
		var order []string
		for _, e := range ev.Snapshot() {
			if !kinds[e.Kind] {
				kinds[e.Kind] = true
				order = append(order, e.Kind)
			}
		}
		res.Notef("faulted tenants' p99.9 is queue-dominated (IOs stacked in DRR behind the "+
			"browned-out SSD) with a visible vslot share (the congestion clamp), while healthy "+
			"tenants stay device-bound at ~0 burn and faulted burn >> 1; correlated events: %v (%d transitions)",
			order, ev.Total())
	}
	return []*Result{res}
}
