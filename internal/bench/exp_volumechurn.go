package bench

import (
	"fmt"
	"strconv"

	"gimbal/internal/blobstore"
	"gimbal/internal/core"
	"gimbal/internal/nvme"
	"gimbal/internal/sim"
	"gimbal/internal/ssd"
	"gimbal/internal/stats"
	"gimbal/internal/volume"
)

func init() {
	register("volume-churn", "Volume control plane under churn: capacity accounting, COW amplification, per-class fairness", runVolumeChurn)
}

// Knobs as package variables so the smoke test can shrink the run.
var (
	volChurnSSDs     = 4
	volChurnCapacity = int64(4) << 30 // per-SSD usable bytes
	volChurnTargets  = []int{500, 2500}
	volChurnOpsPS    = 2000.0 // control-plane operations/s
	volChurnIOPS     = 25_000.0
	volChurnWarm     = int64(100 * sim.Millisecond)
	volChurnDur      = int64(900 * sim.Millisecond)
	volChurnFairWarm = int64(200 * sim.Millisecond)
	volChurnFairDur  = int64(600 * sim.Millisecond)
)

const volChurnClasses = "gold=8,silver=4,besteffort=1"

// swTarget adapts one Gimbal switch to the volume layer's Target: every
// IO routed through it is stamped with the carrying tenant, so COW copy
// traffic a write triggers is charged to the class that caused it.
type swTarget struct {
	sw *core.Switch
	t  *nvme.Tenant
}

func (a *swTarget) Submit(io *nvme.IO) {
	io.Tenant = a.t
	a.sw.Enqueue(io)
}

// volRig is one simulated JBOF with a volume control plane on top: a
// Gimbal switch per SSD (class weights compiled from the QoS menu), a
// blobstore allocator over the SSDs, and per-(SSD, class) adapter targets
// so the mapping layer routes by class.
type volRig struct {
	loop    *sim.Loop
	m       *volume.Manager
	classes *volume.ClassSet
	comp    volume.Compiled
	devs    []*ssd.SSD
	sws     []*core.Switch
	routers []volume.Router // per class
}

// newVolRig builds the rig. Tenant IDs are allocated densely per rig, so
// two rigs are independent and identically seeded rigs are identical.
// maxSlots > 0 overrides the per-switch virtual-slot ceiling (the fairness
// phase raises it so the congestion-control rate gate — where the class
// DRR arbitrates — is the binding resource, not the equal-per-contender
// slot allotment).
func newVolRig(nssd int, capacity int64, maxSlots int) *volRig {
	loop := sim.NewLoop()
	rng := sim.NewRNG(23)
	classes, err := volume.ParseClasses(volChurnClasses)
	if err != nil {
		panic(err)
	}
	comp := classes.Compile()

	ccfg := core.DefaultConfig()
	ccfg.Sched.ClassWeights = comp.ClassWeights
	if maxSlots > 0 {
		ccfg.Sched.Slots.MaxSlots = maxSlots
	}

	r := &volRig{loop: loop, classes: classes, comp: comp}
	nextID := 0
	sws := make([]*core.Switch, nssd)
	r.sws = sws
	adapters := make([][]*swTarget, nssd) // [ssd][class]
	system := make([]*swTarget, nssd)
	for i := 0; i < nssd; i++ {
		p := ssd.DCT983()
		p.UsableBytes = capacity
		d := ssd.New(loop, p)
		d.Precondition(ssd.Clean, rng.Fork())
		r.devs = append(r.devs, d)
		sws[i] = core.New(loop, d, ccfg)
		adapters[i] = make([]*swTarget, classes.Len())
		for c := 0; c < classes.Len(); c++ {
			t := nvme.NewTenant(nextID, fmt.Sprintf("ssd%d-%s", i, classes.Spec(c).Name))
			nextID++
			t.Class = c
			sws[i].Register(t)
			adapters[i][c] = &swTarget{sw: sws[i], t: t}
		}
		st := nvme.NewTenant(nextID, fmt.Sprintf("ssd%d-system", i))
		nextID++
		sws[i].Register(st)
		system[i] = &swTarget{sw: sws[i], t: st}
	}

	bc := blobstore.DefaultConfig()
	bc.Replicas = 1
	caps := make([]int64, nssd)
	backends := make([]*blobstore.Backend, nssd)
	var local *blobstore.Local
	for i := 0; i < nssd; i++ {
		caps[i] = capacity
		i := i
		backends[i] = &blobstore.Backend{
			Target: adapters[i][0],
			// Free-space balancing: the control plane has no live credit
			// signal, so placement spreads by remaining micro blobs.
			Headroom: func() int { return local.FreeMicros(i) + 64*local.Global().FreeMegas(i) },
			Capacity: capacity,
		}
	}
	local = blobstore.NewLocal(blobstore.NewGlobal(bc, caps), backends)
	r.m = volume.NewManager(loop, volume.DefaultConfig(), local, classes,
		func(b int) volume.Target { return system[b] })
	for c := 0; c < classes.Len(); c++ {
		c := c
		r.routers = append(r.routers, func(b int) volume.Target { return adapters[b][c] })
	}
	return r
}

// churnState drives the control plane and the data plane against one rig:
// a target live-volume population maintained by create/delete churn with
// snapshots, clones, and resizes mixed in, plus open-loop IO spread over
// the live population.
type churnState struct {
	r      *volRig
	target int
	nextV  int
	nextS  int

	live  []*volume.Volume
	snaps []*volume.Snapshot

	creates, deletes, snapCuts, snapDels, clones, resizes, rejected int64

	issued, completed, aborted, errored, shed int64
	writeBytes, readBytes                     int64
	inflight                                  int
	lat                                       *stats.Histogram
}

func (cs *churnState) vsize(rng *sim.RNG) int64 {
	return int64(4+rng.Intn(13)) << 20 // 4–16MB
}

func (cs *churnState) create(rng *sim.RNG) {
	name := fmt.Sprintf("v%06d", cs.nextV)
	cs.nextV++
	v, err := cs.r.m.Create(volume.Spec{
		Name:  name,
		Size:  cs.vsize(rng),
		Class: cs.r.classes.Spec(rng.Intn(cs.r.classes.Len())).Name,
	})
	if err != nil {
		cs.rejected++
		return
	}
	cs.live = append(cs.live, v)
	cs.creates++
}

// removeLive drops index i by deterministic swap-remove.
func (cs *churnState) removeLive(i int) {
	cs.live[i] = cs.live[len(cs.live)-1]
	cs.live = cs.live[:len(cs.live)-1]
}

func (cs *churnState) deleteVol(rng *sim.RNG) {
	if len(cs.live) == 0 {
		return
	}
	i := rng.Intn(len(cs.live))
	if err := cs.r.m.Delete(cs.live[i].Name()); err != nil {
		cs.rejected++
		return
	}
	cs.removeLive(i)
	cs.deletes++
}

// step performs one control-plane operation, keeping the live population
// at the target.
func (cs *churnState) step(rng *sim.RNG) {
	if len(cs.live) < cs.target {
		cs.create(rng)
		return
	}
	switch op := rng.Float64(); {
	case op < 0.45: // replace: delete one, create one
		cs.deleteVol(rng)
		cs.create(rng)
	case op < 0.60: // snapshot a random live volume
		v := cs.live[rng.Intn(len(cs.live))]
		name := fmt.Sprintf("s%06d", cs.nextS)
		cs.nextS++
		s, err := cs.r.m.Snapshot(v.Name(), name)
		if err != nil {
			cs.rejected++
			return
		}
		cs.snaps = append(cs.snaps, s)
		cs.snapCuts++
	case op < 0.75: // clone a random snapshot, retiring a volume to hold the population
		if len(cs.snaps) == 0 {
			cs.create(rng)
			return
		}
		s := cs.snaps[rng.Intn(len(cs.snaps))]
		name := fmt.Sprintf("v%06d", cs.nextV)
		cs.nextV++
		v, err := cs.r.m.Clone(s.Name(), name, cs.r.classes.Spec(rng.Intn(cs.r.classes.Len())).Name)
		if err != nil {
			cs.rejected++
			return
		}
		cs.live = append(cs.live, v)
		cs.clones++
		cs.deleteVol(rng)
	case op < 0.90: // delete a random snapshot (clones pin it: counted, skipped)
		if len(cs.snaps) == 0 {
			return
		}
		i := rng.Intn(len(cs.snaps))
		if err := cs.r.m.DeleteSnapshot(cs.snaps[i].Name()); err != nil {
			cs.rejected++
			return
		}
		cs.snaps[i] = cs.snaps[len(cs.snaps)-1]
		cs.snaps = cs.snaps[:len(cs.snaps)-1]
		cs.snapDels++
	default: // resize a random live volume
		v := cs.live[rng.Intn(len(cs.live))]
		if err := cs.r.m.Resize(v.Name(), cs.vsize(rng)); err != nil {
			cs.rejected++
			return
		}
		cs.resizes++
	}
}

// issueIO sends one open-loop IO at a random offset of a random live
// volume through the mapping layer on the volume's class router.
func (cs *churnState) issueIO(rng *sim.RNG, stop int64) {
	const ioSize = 16 << 10
	if len(cs.live) == 0 {
		return
	}
	if cs.inflight >= 4096 {
		cs.shed++
		return
	}
	v := cs.live[rng.Intn(len(cs.live))]
	if v.Size() < ioSize {
		return
	}
	slots := (v.Size() - ioSize) / 4096
	io := &nvme.IO{
		Offset:   rng.Int63n(slots+1) * 4096,
		Size:     ioSize,
		Priority: cs.r.comp.Priorities[v.Class()],
	}
	if rng.Float64() < 0.6 {
		io.Op = nvme.OpWrite
	} else {
		io.Op = nvme.OpRead
	}
	start := cs.r.loop.Now()
	cs.issued++
	cs.inflight++
	io.Done = func(io *nvme.IO, cpl nvme.Completion) {
		cs.inflight--
		switch cpl.Status {
		case nvme.StatusOK:
			cs.completed++
			cs.lat.Record(cs.r.loop.Now() - start)
			if io.Op == nvme.OpWrite {
				cs.writeBytes += int64(io.Size)
			} else {
				cs.readBytes += int64(io.Size)
			}
		case nvme.StatusAborted:
			cs.aborted++ // volume deleted with the IO in flight
		default:
			cs.errored++
		}
	}
	v.Route(io, cs.r.routers[v.Class()])
	_ = stop
}

// runVolumeChurn reports two tables: the churn sweep (population scale
// points, accounting audit, COW amplification, teardown exactness) and a
// saturation fairness check of the compiled class weights.
func runVolumeChurn(cx *Ctx) []*Result {
	churn := &Result{
		ID:    "volume-churn",
		Title: "Thousands of live volumes under create/snapshot/clone/delete churn with open-loop IO",
		Header: []string{"live_vols", "ssds", "churn_ops", "snaps", "clones", "rejected",
			"completed", "aborted", "shed", "p50_us", "p99_us",
			"write_mb", "cow_copies", "cow_amp", "zero_reads",
			"alloc_mb", "logical_mb", "audit", "end_alloc_b", "trims", "alloc_fail"},
	}
	for _, target := range volChurnTargets {
		volumeChurnRow(churn, target)
	}
	churn.Notef("audit recomputes refcounts and byte accounting from the live mapping tables: "+
		"ok = allocated bytes exactly equal the sum of live unique spans at %0.f ops/s churn", volChurnOpsPS)
	churn.Notef("cow_amp = bytes copied by COW remaps / client write bytes; COW copies ride the writing class's tenant")
	churn.Notef("end_alloc_b is allocated bytes after deleting every volume and snapshot — nonzero means a leaked span")

	fair := &Result{
		ID:     "volume-churn-fairness",
		Title:  fmt.Sprintf("Saturating one SSD from one volume per class (%s): bandwidth vs configured weights", volChurnClasses),
		Header: []string{"class", "weight", "mbps", "share", "want_share", "err_pct"},
	}
	volumeFairnessRows(fair)
	fair.Notef("closed-loop 64KB writes, one volume per class on one SSD; share is the class's fraction " +
		"of delivered bandwidth, want_share its weight's fraction of the weight sum")
	_ = cx
	return []*Result{churn, fair}
}

// volumeChurnRow runs one scale point: prefill to the target population,
// churn + open-loop IO over the measured window, audit, then tear
// everything down and verify the allocator drained to zero.
func volumeChurnRow(res *Result, target int) {
	r := newVolRig(volChurnSSDs, volChurnCapacity, 0)
	rng := sim.NewRNG(uint64(37 + target))
	churnRNG, ioRNG := rng.Fork(), rng.Fork()
	cs := &churnState{r: r, target: target, lat: stats.NewHistogram()}

	for len(cs.live) < target {
		cs.create(churnRNG)
	}
	prefill := cs.creates
	stop := r.loop.Now() + volChurnWarm + volChurnDur

	churnGap := int64(1e9 / volChurnOpsPS)
	var churnTick func()
	churnTick = func() {
		cs.step(churnRNG)
		if r.loop.Now() < stop {
			r.loop.After(churnGap, churnTick).MarkDaemon()
		}
	}
	r.loop.After(churnGap, churnTick).MarkDaemon()

	var ioTick func()
	ioTick = func() {
		cs.issueIO(ioRNG, stop)
		if r.loop.Now() < stop {
			r.loop.After(int64(ioRNG.Exp(1e9/volChurnIOPS))+1, ioTick).MarkDaemon()
		}
	}
	r.loop.After(1, ioTick).MarkDaemon()

	r.loop.RunUntil(stop)
	r.loop.Run() // drain in-flight IO

	u := r.m.Usage()
	audit := "ok"
	if err := r.m.Audit(); err != nil {
		audit = "FAIL: " + err.Error()
	}
	if len(cs.live) < target {
		audit += fmt.Sprintf(" (population fell to %d)", len(cs.live))
	}
	cowAmp := 0.0
	if cs.writeBytes > 0 {
		cowAmp = float64(u.CowBytesCopied) / float64(cs.writeBytes)
	}

	// Teardown: volumes first (unpinning snapshots), then snapshots.
	for _, v := range r.m.List() {
		if err := r.m.Delete(v.Name()); err != nil {
			audit += " (teardown: " + err.Error() + ")"
		}
	}
	for _, s := range r.m.ListSnapshots() {
		if err := r.m.DeleteSnapshot(s.Name()); err != nil {
			audit += " (teardown: " + err.Error() + ")"
		}
	}
	r.loop.Run() // drain trims
	end := r.m.Usage()

	res.AddRow(
		strconv.Itoa(target),
		strconv.Itoa(volChurnSSDs),
		strconv.FormatInt(cs.creates-prefill+cs.deletes+cs.snapCuts+cs.snapDels+cs.clones+cs.resizes, 10),
		strconv.FormatInt(cs.snapCuts, 10),
		strconv.FormatInt(cs.clones, 10),
		strconv.FormatInt(cs.rejected, 10),
		strconv.FormatInt(cs.completed, 10),
		strconv.FormatInt(cs.aborted, 10),
		strconv.FormatInt(cs.shed, 10),
		us(cs.lat.P50()), us(cs.lat.P99()),
		strconv.FormatInt(cs.writeBytes>>20, 10),
		strconv.FormatInt(u.CowCopies, 10),
		f2(cowAmp),
		strconv.FormatInt(u.ZeroReads, 10),
		strconv.FormatInt(u.AllocatedBytes>>20, 10),
		strconv.FormatInt(u.LogicalBytes>>20, 10),
		audit,
		strconv.FormatInt(end.AllocatedBytes, 10),
		strconv.FormatInt(end.Trims, 10),
		strconv.FormatInt(end.AllocFailures, 10),
	)
}

// volumeFairnessRows saturates one SSD with a closed-loop writer per
// class and reports each class's delivered share against its weight.
func volumeFairnessRows(res *Result) {
	r := newVolRig(1, volChurnCapacity, 4096)
	n := r.classes.Len()
	vols := make([]*volume.Volume, n)
	for c := 0; c < n; c++ {
		v, err := r.m.Create(volume.Spec{
			Name:  "fair-" + r.classes.Spec(c).Name,
			Size:  256 << 20,
			Class: r.classes.Spec(c).Name,
		})
		if err != nil {
			panic(err)
		}
		vols[c] = v
	}

	// The queue depth is far above the device's sustainable outstanding
	// set, so every class keeps a standing DRR backlog and the class
	// weights — not the closed loop — decide the dispatch ratio.
	const qd, ioSize = 256, 64 << 10
	bytes := make([]int64, n)
	measuring := false
	stop := r.loop.Now() + volChurnFairWarm + volChurnFairDur
	rng := sim.NewRNG(53)
	for c := 0; c < n; c++ {
		c := c
		wrng := rng.Fork()
		var submit func()
		submit = func() {
			if r.loop.Now() >= stop {
				return
			}
			v := vols[c]
			slots := (v.Size() - ioSize) / 4096
			io := &nvme.IO{
				Op:       nvme.OpWrite,
				Offset:   wrng.Int63n(slots+1) * 4096,
				Size:     ioSize,
				Priority: r.comp.Priorities[c],
			}
			io.Done = func(io *nvme.IO, cpl nvme.Completion) {
				if cpl.Status == nvme.StatusOK && measuring {
					bytes[c] += int64(io.Size)
				}
				submit()
			}
			v.Route(io, r.routers[c])
		}
		for i := 0; i < qd; i++ {
			submit()
		}
	}
	r.loop.RunUntil(r.loop.Now() + volChurnFairWarm)
	measuring = true
	r.loop.RunUntil(stop)
	// Close the window before draining: the ~qd outstanding IOs per class
	// complete after stop in equal numbers and would dilute the measured
	// ratio toward 1 if counted.
	measuring = false
	r.loop.Run()

	var total int64
	weightSum := 0
	for c := 0; c < n; c++ {
		total += bytes[c]
		weightSum += r.classes.Spec(c).Weight
	}
	secs := float64(volChurnFairDur) / 1e9
	for c := 0; c < n; c++ {
		share := 0.0
		if total > 0 {
			share = float64(bytes[c]) / float64(total)
		}
		want := float64(r.classes.Spec(c).Weight) / float64(weightSum)
		res.AddRow(
			r.classes.Spec(c).Name,
			strconv.Itoa(r.classes.Spec(c).Weight),
			f1(float64(bytes[c])/1e6/secs),
			f2(share),
			f2(want),
			f1((share-want)/want*100),
		)
	}
}
