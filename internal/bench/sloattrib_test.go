package bench

import (
	"bytes"
	"strconv"
	"testing"
)

// cellF parses one numeric table cell.
func cellF(t *testing.T, s string) float64 {
	t.Helper()
	v, err := strconv.ParseFloat(s, 64)
	if err != nil {
		t.Fatalf("non-numeric cell %q: %v", s, err)
	}
	return v
}

// TestSLOAttribTable is the acceptance assertion for the attribution
// experiment: under the brownout timeline the table must separate the two
// tenant classes — healthy tenants meet the objective with ~zero burn and a
// device-bound tail, faulted tenants blow their error budget with a
// queue-dominated tail.
func TestSLOAttribTable(t *testing.T) {
	if testing.Short() {
		t.Skip("runs the full brownout timeline with full tracing; skipped in -short")
	}
	res := runSLOAttribExp(NewCtx())
	if len(res) != 1 {
		t.Fatalf("slo-attrib produced %d results", len(res))
	}
	rows := res[0].Rows
	if len(rows) != 7 {
		t.Fatalf("slo-attrib produced %d rows, want 7 (3 healthy + 4 faulted)", len(rows))
	}
	// Header: tenant, ios, p999_us, fabric_us, queue_us, vslot_us,
	// pacing_us, device_us, gc_us, complete_us, met_pct, burn@fault_end.
	const (
		colIOs = 1 + iota
		colP999
		colFabric
		colQueue
		colVslot
		colPacing
		colDevice
		colGC
		colComplete
		colMet
		colBurn
	)
	for _, row := range rows[:3] {
		if met := cellF(t, row[colMet]); met < 99 {
			t.Errorf("%s met %.1f%% of its objective, want ≥ 99%%", row[0], met)
		}
		if burn := cellF(t, row[colBurn]); burn > 0.5 {
			t.Errorf("%s burn rate %.1f at fault end, want ~0", row[0], burn)
		}
		if dev, p999 := cellF(t, row[colDevice]), cellF(t, row[colP999]); dev < p999/2 {
			t.Errorf("%s tail not device-bound: device %.1fµs of p99.9 %.1fµs", row[0], dev, p999)
		}
	}
	for _, row := range rows[3:] {
		if cellF(t, row[colIOs]) == 0 {
			t.Fatalf("%s captured no traces", row[0])
		}
		met := cellF(t, row[colMet])
		if met > 60 {
			t.Errorf("%s met %.1f%% during the brownout, want far below the 99.9%% goal", row[0], met)
		}
		if burn := cellF(t, row[colBurn]); burn <= 1 {
			t.Errorf("%s burn rate %.2f at fault end, want > 1 (budget burning)", row[0], burn)
		}
		queue, p999 := cellF(t, row[colQueue]), cellF(t, row[colP999])
		if queue < p999/2 {
			t.Errorf("%s tail not queue-dominated: queue %.1fµs of p99.9 %.1fµs", row[0], queue, p999)
		}
	}
	// The phase columns must decompose the tail: their sum stays within the
	// p99.9 envelope's order of magnitude (each column is a mean across the
	// tail set, so exact equality is not expected).
	for _, row := range rows {
		var sum float64
		for c := colFabric; c <= colComplete; c++ {
			sum += cellF(t, row[c])
		}
		if p999 := cellF(t, row[colP999]); sum < p999/2 {
			t.Errorf("%s phases sum to %.1fµs, less than half of p99.9 %.1fµs — attribution leak", row[0], sum, p999)
		}
	}
}

// TestSLOAttribDeterministic asserts the attribution report is
// seed-deterministic and byte-identical under -parallel.
func TestSLOAttribDeterministic(t *testing.T) {
	if testing.Short() {
		t.Skip("runs the timeline several times; skipped in -short")
	}
	shrinkChaosUnit(t)

	e, ok := Lookup("slo-attrib")
	if !ok {
		t.Fatal("slo-attrib not registered")
	}
	serial := renderReport(t, RunReport(e))
	if again := renderReport(t, RunReport(e)); !bytes.Equal(serial, again) {
		t.Fatal("two serial same-seed slo-attrib runs differ")
	}
	reports, err := RunAll([]string{"slo-attrib", "slo-attrib"}, 2, nil)
	if err != nil {
		t.Fatal(err)
	}
	for i, rp := range reports {
		if got := renderReport(t, rp); !bytes.Equal(serial, got) {
			t.Fatalf("parallel slo-attrib run %d differs from serial run", i)
		}
	}
}
