package bench

import (
	"strconv"
	"testing"

	"gimbal/internal/sim"
)

// shrinkTenantScale shrinks the population sweep and windows so the smoke
// test runs in test time; the full sweep is the gimbalbench experiment.
func shrinkTenantScale(t *testing.T) {
	t.Helper()
	savedPops, savedChurnPop := tenantScalePops, tenantScaleChurnPop
	savedWarm, savedDur := tenantScaleWarm, tenantScaleDur
	savedIOPS, savedSeries := tenantScaleIOPS, tenantScaleSeries
	tenantScalePops = []int{100, 5_000}
	tenantScaleChurnPop = 5_000
	tenantScaleWarm = 20 * sim.Millisecond
	tenantScaleDur = 100 * sim.Millisecond
	tenantScaleIOPS = 30_000
	tenantScaleSeries = 1024
	t.Cleanup(func() {
		tenantScalePops, tenantScaleChurnPop = savedPops, savedChurnPop
		tenantScaleWarm, tenantScaleDur = savedWarm, savedDur
		tenantScaleIOPS, tenantScaleSeries = savedIOPS, savedSeries
	})
}

// TestTenantScaleSmoke runs a shrunk population sweep end to end and
// asserts the row structure the full experiment promises: IOs complete at
// every population, per-tenant obs series stay within the budget with the
// tail collapsed into the overflow series, and the churn row replaces
// tenants without wedging the switch.
func TestTenantScaleSmoke(t *testing.T) {
	shrinkTenantScale(t)
	e, ok := Lookup("tenant-scale")
	if !ok {
		t.Fatal("tenant-scale not registered")
	}
	rp := RunReport(e)
	if len(rp.Results) != 1 {
		t.Fatalf("results = %d, want 1", len(rp.Results))
	}
	res := rp.Results[0]
	if len(res.Rows) != len(tenantScalePops)+1 {
		t.Fatalf("rows = %d, want %d", len(res.Rows), len(tenantScalePops)+1)
	}
	col := func(row []string, name string) string {
		for i, h := range res.Header {
			if h == name {
				return row[i]
			}
		}
		t.Fatalf("no column %q", name)
		return ""
	}
	atoi := func(s string) int {
		v, err := strconv.Atoi(s)
		if err != nil {
			t.Fatalf("non-numeric cell %q", s)
		}
		return v
	}
	for i, row := range res.Rows {
		if atoi(col(row, "completed")) == 0 {
			t.Fatalf("row %d completed no IOs: %v", i, row)
		}
		series := atoi(col(row, "obs_series"))
		overflow := atoi(col(row, "obs_overflow"))
		pop := atoi(col(row, "tenants"))
		if series > tenantScaleSeries {
			t.Fatalf("row %d: %d series exceeds budget %d", i, series, tenantScaleSeries)
		}
		if pop > tenantScaleSeries {
			if overflow != 1 {
				t.Fatalf("row %d: population %d over budget, overflow series = %d, want 1", i, pop, overflow)
			}
			if series != tenantScaleSeries {
				t.Fatalf("row %d: series = %d, want budget %d exactly", i, series, tenantScaleSeries)
			}
		} else if overflow != 0 && col(row, "churn_s") == "0" {
			t.Fatalf("row %d: population %d under budget but overflow series exists", i, pop)
		}
	}
	// Churn row: replacements happened.
	churnRow := res.Rows[len(res.Rows)-1]
	if col(churnRow, "churn_s") == "0" {
		t.Fatal("last row should be the churn row")
	}
}

// TestTenantScaleSimDeterministic asserts the simulated columns (all but
// host_ns_per_io) are identical across two runs: the scenario engine and
// the switch are seed-deterministic; only the wall-clock column may vary.
func TestTenantScaleSimDeterministic(t *testing.T) {
	shrinkTenantScale(t)
	e, _ := Lookup("tenant-scale")
	a, b := RunReport(e), RunReport(e)
	ra, rb := a.Results[0], b.Results[0]
	hostCol := -1
	for i, h := range ra.Header {
		if h == "host_ns_per_io" {
			hostCol = i
		}
	}
	for i := range ra.Rows {
		for j := range ra.Rows[i] {
			if j == hostCol {
				continue
			}
			if ra.Rows[i][j] != rb.Rows[i][j] {
				t.Fatalf("row %d col %s differs: %q vs %q", i, ra.Header[j], ra.Rows[i][j], rb.Rows[i][j])
			}
		}
	}
}
