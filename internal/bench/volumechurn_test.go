package bench

import (
	"strconv"
	"strings"
	"testing"

	"gimbal/internal/sim"
)

// shrinkVolumeChurn shrinks the population and windows so the smoke test
// runs in test time; the full sweep is the gimbalbench experiment.
func shrinkVolumeChurn(t *testing.T) {
	t.Helper()
	savedSSDs, savedCap := volChurnSSDs, volChurnCapacity
	savedTargets, savedOps, savedIOPS := volChurnTargets, volChurnOpsPS, volChurnIOPS
	savedWarm, savedDur := volChurnWarm, volChurnDur
	savedFW, savedFD := volChurnFairWarm, volChurnFairDur
	volChurnSSDs = 2
	volChurnCapacity = 1 << 30
	volChurnTargets = []int{300}
	volChurnOpsPS = 1000
	volChurnIOPS = 8000
	volChurnWarm = 20 * sim.Millisecond
	volChurnDur = 180 * sim.Millisecond
	volChurnFairWarm = 100 * sim.Millisecond
	volChurnFairDur = 300 * sim.Millisecond
	t.Cleanup(func() {
		volChurnSSDs, volChurnCapacity = savedSSDs, savedCap
		volChurnTargets, volChurnOpsPS, volChurnIOPS = savedTargets, savedOps, savedIOPS
		volChurnWarm, volChurnDur = savedWarm, savedDur
		volChurnFairWarm, volChurnFairDur = savedFW, savedFD
	})
}

func cell(t *testing.T, res *Result, row []string, name string) string {
	t.Helper()
	for i, h := range res.Header {
		if h == name {
			return row[i]
		}
	}
	t.Fatalf("no column %q in %v", name, res.Header)
	return ""
}

// TestVolumeChurnSmoke runs a shrunk churn sweep end to end and asserts
// the contract the full experiment reports: churn happened, IOs completed,
// the capacity audit is exact, and teardown freed every span.
func TestVolumeChurnSmoke(t *testing.T) {
	shrinkVolumeChurn(t)
	e, ok := Lookup("volume-churn")
	if !ok {
		t.Fatal("volume-churn not registered")
	}
	rp := RunReport(e)
	if len(rp.Results) != 2 {
		t.Fatalf("results = %d, want 2 (churn + fairness)", len(rp.Results))
	}
	churn := rp.Results[0]
	if len(churn.Rows) != len(volChurnTargets) {
		t.Fatalf("churn rows = %d, want %d", len(churn.Rows), len(volChurnTargets))
	}
	atoi := func(s string) int64 {
		v, err := strconv.ParseInt(s, 10, 64)
		if err != nil {
			t.Fatalf("non-numeric cell %q", s)
		}
		return v
	}
	for i, row := range churn.Rows {
		if got := cell(t, churn, row, "audit"); got != "ok" {
			t.Errorf("row %d audit = %q", i, got)
		}
		if atoi(cell(t, churn, row, "churn_ops")) == 0 {
			t.Errorf("row %d: no churn ops ran", i)
		}
		if atoi(cell(t, churn, row, "completed")) == 0 {
			t.Errorf("row %d: no IOs completed", i)
		}
		if atoi(cell(t, churn, row, "snaps")) == 0 || atoi(cell(t, churn, row, "clones")) == 0 {
			t.Errorf("row %d: churn cut no snapshots/clones: %v", i, row)
		}
		if atoi(cell(t, churn, row, "cow_copies")) == 0 {
			t.Errorf("row %d: no COW copies despite clone writes", i)
		}
		if got := atoi(cell(t, churn, row, "end_alloc_b")); got != 0 {
			t.Errorf("row %d: teardown leaked %d allocated bytes", i, got)
		}
		if atoi(cell(t, churn, row, "trims")) == 0 {
			t.Errorf("row %d: teardown trimmed nothing", i)
		}
		if atoi(cell(t, churn, row, "alloc_fail")) != 0 {
			t.Errorf("row %d: allocation failures under configured capacity", i)
		}
	}

	// Fairness: gold:silver delivered bandwidth within 10% of the 8:4
	// configured weights.
	fair := rp.Results[1]
	mbps := map[string]float64{}
	for _, row := range fair.Rows {
		v, err := strconv.ParseFloat(cell(t, fair, row, "mbps"), 64)
		if err != nil {
			t.Fatalf("bad mbps cell: %v", err)
		}
		mbps[cell(t, fair, row, "class")] = v
	}
	if mbps["silver"] <= 0 {
		t.Fatalf("silver class starved: %v", mbps)
	}
	ratio := mbps["gold"] / mbps["silver"]
	if ratio < 2.0*0.9 || ratio > 2.0*1.1 {
		t.Fatalf("gold:silver ratio %.2f outside 10%% of configured 2.0 (%v)", ratio, mbps)
	}
	if mbps["besteffort"] >= mbps["silver"] {
		t.Fatalf("besteffort not subordinate: %v", mbps)
	}
}

// TestVolumeChurnDeterministic asserts the report is byte-identical
// across runs: every cell is simulation-derived (no wall-clock columns),
// so two runs of the same seed must agree exactly.
func TestVolumeChurnDeterministic(t *testing.T) {
	shrinkVolumeChurn(t)
	e, _ := Lookup("volume-churn")
	a, b := RunReport(e), RunReport(e)
	for ri := range a.Results {
		ra, rb := a.Results[ri], b.Results[ri]
		if len(ra.Rows) != len(rb.Rows) {
			t.Fatalf("result %d row count differs", ri)
		}
		for i := range ra.Rows {
			if strings.Join(ra.Rows[i], "|") != strings.Join(rb.Rows[i], "|") {
				t.Fatalf("result %d row %d differs:\n  %v\n  %v", ri, i, ra.Rows[i], rb.Rows[i])
			}
		}
	}
}
