package gimbal

// The testing.B benchmarks behind Table 1 of the paper, plus hot-path
// micro-benchmarks for the switch components. Run:
//
//	go test -bench=. -benchmem
//
// Table 1a/1b measured the submit/complete CPU cost of the Gimbal pipeline
// against a vanilla pass-through on a NULL device; BenchmarkTable1a* and
// BenchmarkTable1b* are the equivalents for this implementation (one IO
// per iteration through the full scheduler pipeline on a virtual-time
// loop; the loop overhead is common to both schemes, so the relative gap
// mirrors the paper's percentages).

import (
	"fmt"
	"testing"

	"gimbal/internal/baseline/vanilla"
	"gimbal/internal/core"
	"gimbal/internal/core/latmon"
	"gimbal/internal/core/ratectl"
	"gimbal/internal/core/sched"
	"gimbal/internal/fabric"
	"gimbal/internal/fault"
	"gimbal/internal/kvstore"
	"gimbal/internal/nvme"
	"gimbal/internal/obs"
	"gimbal/internal/sim"
	"gimbal/internal/ssd"
	"gimbal/internal/stats"
)

// benchPipeline pushes b.N 4KB reads through a scheduler over a NULL
// device: the Table 1 measurement harness.
func benchPipeline(b *testing.B, useGimbal bool, workers, qd int) {
	loop := sim.NewLoop()
	dev := ssd.NewNull(loop, 8<<30, 100)
	var s nvme.Scheduler
	if useGimbal {
		s = core.New(loop, dev, core.DefaultConfig())
	} else {
		s = vanilla.New(loop, dev)
	}
	remaining := b.N
	rng := sim.NewRNG(3)
	var submit func(t *nvme.Tenant)
	submit = func(t *nvme.Tenant) {
		if remaining <= 0 {
			return
		}
		remaining--
		io := &nvme.IO{Op: nvme.OpRead, Offset: rng.Int63n(1<<20) * 4096, Size: 4096, Tenant: t}
		io.Done = func(*nvme.IO, nvme.Completion) { submit(t) }
		s.Enqueue(io)
	}
	tenants := make([]*nvme.Tenant, workers)
	for i := range tenants {
		tenants[i] = nvme.NewTenant(i, fmt.Sprintf("t%d", i))
		s.Register(tenants[i])
	}
	b.ReportAllocs()
	b.ResetTimer()
	for _, t := range tenants {
		for i := 0; i < qd; i++ {
			submit(t)
		}
	}
	loop.Run()
}

// Table 1a: per-IO pipeline cost at QD1 and at 16 tenants x QD32.
func BenchmarkTable1aVanillaQD1(b *testing.B)   { benchPipeline(b, false, 1, 1) }
func BenchmarkTable1aGimbalQD1(b *testing.B)    { benchPipeline(b, true, 1, 1) }
func BenchmarkTable1aVanilla16x32(b *testing.B) { benchPipeline(b, false, 16, 32) }
func BenchmarkTable1aGimbal16x32(b *testing.B)  { benchPipeline(b, true, 16, 32) }

// Table 1b: the NULL-device max IOPS configuration (8 tenants, deep
// queues). IOPS = 1e9 / (ns/op).
func BenchmarkTable1bVanilla(b *testing.B) { benchPipeline(b, false, 8, 32) }
func BenchmarkTable1bGimbal(b *testing.B)  { benchPipeline(b, true, 8, 32) }

// --- Hot-path micro-benchmarks ---

func BenchmarkLatencyMonitorUpdate(b *testing.B) {
	m := latmon.New(latmon.DefaultConfig())
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		m.Update(int64(100_000 + i%500_000))
	}
}

func BenchmarkTokenBucketRefillConsume(b *testing.B) {
	e := ratectl.New(ratectl.DefaultConfig(), 0)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		e.Refill(int64(i)*1000, 3)
		e.TryConsume(i%4 == 0, 4096)
	}
}

func BenchmarkDRRSelectCommitComplete(b *testing.B) {
	d := sched.New(sched.DefaultConfig(), func(io *nvme.IO) int64 { return int64(io.Size) })
	tenants := make([]*nvme.Tenant, 16)
	for i := range tenants {
		tenants[i] = nvme.NewTenant(i, "t")
		d.Register(tenants[i])
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		io := &nvme.IO{Op: nvme.OpRead, Size: 4096, Priority: nvme.PriorityNormal,
			Tenant: tenants[i%16]}
		d.Enqueue(io)
		got := d.Select()
		d.Commit(got)
		d.Complete(got)
	}
}

func BenchmarkCapsuleEncodeDecode(b *testing.B) {
	c := &fabric.CommandCapsule{CID: 7, Opcode: nvme.OpRead, SLBA: 123, Length: 4096}
	buf := make([]byte, 0, 64)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		buf = fabric.AppendCommand(buf[:0], c)
		if _, _, err := fabric.DecodeCommand(buf); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkHistogramRecord(b *testing.B) {
	h := stats.NewHistogram()
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		h.Record(int64(i%10_000_000 + 1000))
	}
}

func BenchmarkSSDReadPath(b *testing.B) {
	loop := sim.NewLoop()
	p := ssd.DCT983()
	p.UsableBytes = 1 << 30
	dev := ssd.New(loop, p)
	dev.Precondition(ssd.Clean, sim.NewRNG(1))
	rng := sim.NewRNG(2)
	remaining := b.N
	var next func()
	next = func() {
		if remaining <= 0 {
			return
		}
		remaining--
		dev.Submit(&ssd.Request{Kind: ssd.OpRead, Offset: rng.Int63n(1<<18) * 4096,
			Size: 4096, Done: func(*ssd.Request) { next() }})
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < 32; i++ {
		next()
	}
	loop.Run()
}

func BenchmarkSSDWritePathWithGC(b *testing.B) {
	loop := sim.NewLoop()
	p := ssd.DCT983()
	p.UsableBytes = 512 << 20
	dev := ssd.New(loop, p)
	dev.Precondition(ssd.Fragmented, sim.NewRNG(1))
	rng := sim.NewRNG(2)
	remaining := b.N
	var next func()
	next = func() {
		if remaining <= 0 {
			return
		}
		remaining--
		dev.Submit(&ssd.Request{Kind: ssd.OpWrite, Offset: rng.Int63n(1<<17) * 4096,
			Size: 4096, Done: func(*ssd.Request) { next() }})
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < 32; i++ {
		next()
	}
	loop.Run()
}

func BenchmarkMemtablePut(b *testing.B) {
	m := kvstore.NewMemtable(sim.NewRNG(1))
	v := make([]byte, 100)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		m.Put(kvstore.Entry{K: kvstore.Key(i % 100_000), V: v, VLen: 100})
	}
}

func BenchmarkBloomLookup(b *testing.B) {
	f := kvstore.NewBloom(100_000, 10)
	for i := 0; i < 100_000; i++ {
		f.Add(kvstore.Key(i))
	}
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		f.MayContain(kvstore.Key(i))
	}
}

func BenchmarkEventLoopStep(b *testing.B) {
	loop := sim.NewLoop()
	b.ReportAllocs()
	b.ResetTimer()
	remaining := b.N
	var tick func()
	tick = func() {
		if remaining > 0 {
			remaining--
			loop.After(100, tick)
		}
	}
	loop.After(100, tick)
	loop.Run()
}

// BenchmarkLoopThroughput is the event-engine acceptance benchmark: 512
// concurrently armed self-rescheduling timers with varied (deterministic)
// periods, the queue shape the rate pacers, latency monitors, and worker
// think-timers produce in a real experiment. Each iteration is one event
// fired; events/sec = 1e9 / (ns/op). Steady state must be 0 allocs/op:
// every firing reuses the arena slot it just freed.
func BenchmarkLoopThroughput(b *testing.B) {
	const timers = 512
	loop := sim.NewLoop()
	remaining := b.N
	ticks := make([]func(), timers)
	for i := range ticks {
		period := int64(50 + 13*(i%37)) // varied but deterministic
		i := i
		ticks[i] = func() {
			if remaining > 0 {
				remaining--
				loop.After(period, ticks[i])
			}
		}
	}
	b.ReportAllocs()
	b.ResetTimer()
	for _, tick := range ticks {
		loop.After(1, tick)
	}
	loop.Run()
}

// BenchmarkAtCancel measures the schedule+cancel churn path — the pacer
// arming a timer per IO and cancelling it when credits arrive first —
// behind a long-lived daemon event, exercising lazy cancellation and heap
// compaction.
func BenchmarkAtCancel(b *testing.B) {
	loop := sim.NewLoop()
	loop.At(1<<40, func() {}).MarkDaemon()
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		loop.After(int64(1000+i%512), func() {}).Cancel()
	}
}

// TestLoopSchedulingAllocFree pins the event engine's zero-allocation
// contract: once the arena is warm, the schedule→fire→reschedule cycle of
// a self-rescheduling timer and the schedule→cancel cycle of a churny one
// must not allocate.
func TestLoopSchedulingAllocFree(t *testing.T) {
	loop := sim.NewLoop()
	n := 0
	var tick func()
	tick = func() {
		if n > 0 {
			n--
			loop.After(100, tick)
		}
	}
	// Warm the arena, heap, and free list.
	n = 64
	loop.After(100, tick)
	loop.Run()

	if avg := testing.AllocsPerRun(100, func() {
		n = 8
		loop.After(100, tick)
		loop.Run()
	}); avg > 0 {
		t.Errorf("schedule/fire cycle allocates %.1f objects per run, want 0", avg)
	}
	if avg := testing.AllocsPerRun(100, func() {
		loop.After(100, func() {}).Cancel()
	}); avg > 0 {
		t.Errorf("schedule/cancel cycle allocates %.1f objects per run, want 0", avg)
	}
}

// TestSwitchSubmitAllocFree pins the per-IO zero-allocation contract of
// the full Gimbal switch path on a NULL device: enqueue → DRR → vslot →
// submit → complete. The IO itself is recycled by the caller here, as the
// fabric layer's session does with its own request pool. The device sits
// behind the fault-injection wrapper with no plan armed, so the contract
// covers the deployment shape the facade and gimbald actually build.
func TestSwitchSubmitAllocFree(t *testing.T) {
	loop := sim.NewLoop()
	dev := fault.Wrap(loop, ssd.NewNull(loop, 8<<30, 100))
	s := core.New(loop, dev, core.DefaultConfig())
	tenant := nvme.NewTenant(0, "t0")
	s.Register(tenant)
	io := &nvme.IO{}
	done := func(*nvme.IO, nvme.Completion) {}
	// Warm: first submits grow DRR rings, vslot free lists, the event arena.
	for i := 0; i < 64; i++ {
		*io = nvme.IO{Op: nvme.OpRead, Offset: int64(i) * 4096, Size: 4096,
			Priority: nvme.PriorityNormal, Tenant: tenant, Done: done}
		s.Enqueue(io)
		loop.Run()
	}
	if avg := testing.AllocsPerRun(100, func() {
		*io = nvme.IO{Op: nvme.OpRead, Offset: 4096, Size: 4096,
			Priority: nvme.PriorityNormal, Tenant: tenant, Done: done}
		s.Enqueue(io)
		loop.Run()
	}); avg > 0 {
		t.Errorf("switch submit path allocates %.1f objects per IO, want 0", avg)
	}
}

// TestSwitchTracedSubmitAllocFree extends the zero-allocation contract to
// the fully observed deployment shape: registry histograms, the sampled
// span tracer, exemplar capture, and the SLO event log all attached. The
// trace travels by value into the preallocated ring and the exemplar slot
// is a mutex-guarded value, so even the IOs that ARE sampled must not
// allocate. CI runs this as the alloc-regression gate for the tracer.
func TestSwitchTracedSubmitAllocFree(t *testing.T) {
	loop := sim.NewLoop()
	dev := fault.Wrap(loop, ssd.NewNull(loop, 8<<30, 100))
	s := core.New(loop, dev, core.DefaultConfig())
	hub := obs.NewHub(obs.NewRegistry())
	hub.Tracer = obs.NewTracer(obs.TracerConfig{
		Capacity: 1024, Mode: obs.TraceSampled, SlowNs: 1_000_000, SampleEvery: 4,
	})
	hub.Events = obs.NewEventLog(64)
	s.AttachObs(hub, 0)
	tenant := nvme.NewTenant(0, "t0")
	s.Register(tenant)
	io := &nvme.IO{}
	done := func(*nvme.IO, nvme.Completion) {}
	for i := 0; i < 64; i++ {
		*io = nvme.IO{Op: nvme.OpRead, Offset: int64(i) * 4096, Size: 4096,
			Priority: nvme.PriorityNormal, Tenant: tenant, Done: done}
		s.Enqueue(io)
		loop.Run()
	}
	if avg := testing.AllocsPerRun(100, func() {
		*io = nvme.IO{Op: nvme.OpRead, Offset: 4096, Size: 4096,
			Priority: nvme.PriorityNormal, Tenant: tenant, Done: done}
		s.Enqueue(io)
		loop.Run()
	}); avg > 0 {
		t.Errorf("traced switch submit path allocates %.1f objects per IO, want 0", avg)
	}
	if hub.Tracer.Captured() == 0 {
		t.Error("sampled tracer captured nothing; the contract above tested the wrong path")
	}
}

// benchObsOverhead is the observability-overhead ablation behind the
// "sampled tracing costs ≲2% over plain metrics" claim: the identical
// Table-1b-style pipeline with counters/histograms attached throughout and
// only the span-capture policy varying (off / tail-biased sampling / full),
// plus a fully unattached baseline isolating the metrics cost itself.
func benchObsOverhead(b *testing.B, mode obs.TraceMode, attach bool) {
	loop := sim.NewLoop()
	dev := ssd.NewNull(loop, 8<<30, 100)
	s := core.New(loop, dev, core.DefaultConfig())
	if attach {
		hub := obs.NewHub(obs.NewRegistry())
		if mode != obs.TraceOff {
			cfg := obs.DefaultTracerConfig()
			cfg.Mode = mode
			hub.Tracer = obs.NewTracer(cfg)
		}
		hub.Events = obs.NewEventLog(256)
		s.AttachObs(hub, 0)
	}
	remaining := b.N
	rng := sim.NewRNG(3)
	var submit func(t *nvme.Tenant)
	submit = func(t *nvme.Tenant) {
		if remaining <= 0 {
			return
		}
		remaining--
		io := &nvme.IO{Op: nvme.OpRead, Offset: rng.Int63n(1<<20) * 4096, Size: 4096, Tenant: t}
		io.Done = func(*nvme.IO, nvme.Completion) { submit(t) }
		s.Enqueue(io)
	}
	tenants := make([]*nvme.Tenant, 8)
	for i := range tenants {
		tenants[i] = nvme.NewTenant(i, fmt.Sprintf("t%d", i))
		s.Register(tenants[i])
	}
	b.ReportAllocs()
	b.ResetTimer()
	for _, t := range tenants {
		for i := 0; i < 32; i++ {
			submit(t)
		}
	}
	loop.Run()
}

// BenchmarkObsOverhead: Unattached is the bare switch, Off has metrics but
// no tracer, Sampled is the default deployment shape, Full the every-IO
// capture bound. Note this closed 256-deep loop over a 100ns NULL device is
// deliberately congested: ~11% of IOs breach the 1ms SlowNs threshold, so
// Sampled pays the capture path for the whole tail (by design) and lands
// ~12% over Off here; the unsampled per-IO cost is one atomic add and two
// compares. Deltas and the full analysis are in BENCH_issue6.json.
func BenchmarkObsOverhead(b *testing.B) {
	b.Run("Unattached", func(b *testing.B) { benchObsOverhead(b, obs.TraceOff, false) })
	b.Run("Off", func(b *testing.B) { benchObsOverhead(b, obs.TraceOff, true) })
	b.Run("Sampled", func(b *testing.B) { benchObsOverhead(b, obs.TraceSampled, true) })
	b.Run("Full", func(b *testing.B) { benchObsOverhead(b, obs.TraceFull, true) })
}
