// The volume subcommand drives gimbald's CSI-shaped provisioning facade:
//
//	gimbalcli volume create   -admin 127.0.0.1:9420 -name v0 -size 1G [-class gold] [-thick]
//	gimbalcli volume list     -admin 127.0.0.1:9420
//	gimbalcli volume resize   -admin 127.0.0.1:9420 -name v0 -size 2G
//	gimbalcli volume snapshot -admin 127.0.0.1:9420 -vol v0 -name s0
//	gimbalcli volume clone    -admin 127.0.0.1:9420 -snap s0 -name v1 [-class silver]
//	gimbalcli volume delete   -admin 127.0.0.1:9420 -name v0 | -snap s0
package main

import (
	"bytes"
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"log"
	"net/http"
	"strconv"
	"strings"
)

// volumeRow mirrors gimbald's volume wire shape.
type volumeRow struct {
	Name           string `json:"name"`
	SizeBytes      int64  `json:"size_bytes"`
	QoSClass       string `json:"qos_class"`
	Thick          bool   `json:"thick"`
	Parent         string `json:"parent"`
	AllocatedBytes int64  `json:"allocated_bytes"`
}

// snapshotRow mirrors gimbald's snapshot wire shape.
type snapshotRow struct {
	Name      string `json:"name"`
	Source    string `json:"source"`
	SizeBytes int64  `json:"size_bytes"`
	Clones    int    `json:"clones"`
}

type usageRow struct {
	CapacityBytes  int64 `json:"capacity_bytes"`
	AllocatedBytes int64 `json:"allocated_bytes"`
	LogicalBytes   int64 `json:"logical_bytes"`
	Volumes        int   `json:"volumes"`
	Snapshots      int   `json:"snapshots"`
	CowCopies      int64 `json:"cow_copies"`
	Trims          int64 `json:"trims"`
}

// parseSize accepts plain bytes or a K/M/G/T-suffixed size ("1G", "256M").
func parseSize(s string) (int64, error) {
	mult := int64(1)
	switch {
	case strings.HasSuffix(s, "T"):
		mult, s = 1<<40, strings.TrimSuffix(s, "T")
	case strings.HasSuffix(s, "G"):
		mult, s = 1<<30, strings.TrimSuffix(s, "G")
	case strings.HasSuffix(s, "M"):
		mult, s = 1<<20, strings.TrimSuffix(s, "M")
	case strings.HasSuffix(s, "K"):
		mult, s = 1<<10, strings.TrimSuffix(s, "K")
	}
	n, err := strconv.ParseInt(strings.TrimSpace(s), 10, 64)
	if err != nil {
		return 0, fmt.Errorf("bad size %q", s)
	}
	return n * mult, nil
}

func fmtSize(n int64) string {
	switch {
	case n >= 1<<30 && n%(1<<30) == 0:
		return fmt.Sprintf("%dG", n>>30)
	case n >= 1<<20 && n%(1<<20) == 0:
		return fmt.Sprintf("%dM", n>>20)
	case n >= 1<<10 && n%(1<<10) == 0:
		return fmt.Sprintf("%dK", n>>10)
	default:
		return strconv.FormatInt(n, 10)
	}
}

// volumeDo issues one JSON request and decodes the reply into out (which
// may be nil for 204 responses). Non-2xx replies surface the server's
// error field.
func volumeDo(method, url string, body, out any) error {
	var rd io.Reader
	if body != nil {
		b, err := json.Marshal(body)
		if err != nil {
			return err
		}
		rd = bytes.NewReader(b)
	}
	req, err := http.NewRequest(method, url, rd)
	if err != nil {
		return err
	}
	if body != nil {
		req.Header.Set("Content-Type", "application/json")
	}
	rsp, err := http.DefaultClient.Do(req)
	if err != nil {
		return err
	}
	defer rsp.Body.Close()
	if rsp.StatusCode >= 300 {
		var e struct {
			Error string `json:"error"`
		}
		if json.NewDecoder(rsp.Body).Decode(&e) == nil && e.Error != "" {
			return fmt.Errorf("%s: %s", rsp.Status, e.Error)
		}
		return fmt.Errorf("%s %s: %s", method, url, rsp.Status)
	}
	if out == nil || rsp.StatusCode == http.StatusNoContent {
		return nil
	}
	return json.NewDecoder(rsp.Body).Decode(out)
}

// volumeMain dispatches `gimbalcli volume <verb>`.
func volumeMain(args []string) {
	if len(args) < 1 {
		log.Fatal("usage: gimbalcli volume create|list|resize|snapshot|clone|delete [flags]")
	}
	verb, rest := args[0], args[1:]
	fs := flag.NewFlagSet("volume "+verb, flag.ExitOnError)
	var (
		admin = fs.String("admin", "127.0.0.1:9420", "gimbald observability address")
		name  = fs.String("name", "", "volume name (or snapshot name for snapshot/clone verbs)")
		size  = fs.String("size", "", "size, plain bytes or K/M/G/T suffixed")
		class = fs.String("class", "", "QoS class (empty = default class)")
		thick = fs.Bool("thick", false, "preallocate every extent at create time")
		vol   = fs.String("vol", "", "source volume (snapshot verb)")
		snap  = fs.String("snap", "", "source snapshot (clone verb) or snapshot to delete")
	)
	fs.Parse(rest)
	base := "http://" + *admin

	switch verb {
	case "create":
		if *name == "" || *size == "" {
			log.Fatal("volume create: -name and -size are required")
		}
		n, err := parseSize(*size)
		if err != nil {
			log.Fatal(err)
		}
		var v volumeRow
		req := map[string]any{"name": *name, "size_bytes": n, "qos_class": *class, "thick": *thick}
		if err := volumeDo("POST", base+"/volumes", req, &v); err != nil {
			log.Fatal(err)
		}
		fmt.Printf("created volume %s (%s, class %s)\n", v.Name, fmtSize(v.SizeBytes), v.QoSClass)
	case "list":
		var rsp struct {
			Usage   usageRow    `json:"usage"`
			Volumes []volumeRow `json:"volumes"`
		}
		if err := volumeDo("GET", base+"/volumes", nil, &rsp); err != nil {
			log.Fatal(err)
		}
		var snaps []snapshotRow
		if err := volumeDo("GET", base+"/snapshots", nil, &snaps); err != nil {
			log.Fatal(err)
		}
		u := rsp.Usage
		fmt.Printf("capacity %s, allocated %s, logical %s, cow copies %d, trims %d\n",
			fmtSize(u.CapacityBytes), fmtSize(u.AllocatedBytes), fmtSize(u.LogicalBytes), u.CowCopies, u.Trims)
		if len(rsp.Volumes) > 0 {
			fmt.Printf("%-24s %10s %12s %10s %-16s\n", "volume", "size", "class", "alloc", "parent")
			for _, v := range rsp.Volumes {
				fmt.Printf("%-24s %10s %12s %10s %-16s\n",
					v.Name, fmtSize(v.SizeBytes), v.QoSClass, fmtSize(v.AllocatedBytes), v.Parent)
			}
		}
		if len(snaps) > 0 {
			fmt.Printf("%-24s %10s %-16s %7s\n", "snapshot", "size", "source", "clones")
			for _, s := range snaps {
				fmt.Printf("%-24s %10s %-16s %7d\n", s.Name, fmtSize(s.SizeBytes), s.Source, s.Clones)
			}
		}
	case "resize":
		if *name == "" || *size == "" {
			log.Fatal("volume resize: -name and -size are required")
		}
		n, err := parseSize(*size)
		if err != nil {
			log.Fatal(err)
		}
		var v volumeRow
		if err := volumeDo("POST", base+"/volumes/"+*name+"/resize", map[string]any{"size_bytes": n}, &v); err != nil {
			log.Fatal(err)
		}
		fmt.Printf("resized volume %s to %s\n", v.Name, fmtSize(v.SizeBytes))
	case "snapshot":
		if *vol == "" || *name == "" {
			log.Fatal("volume snapshot: -vol and -name are required")
		}
		var s snapshotRow
		if err := volumeDo("POST", base+"/volumes/"+*vol+"/snapshots", map[string]any{"name": *name}, &s); err != nil {
			log.Fatal(err)
		}
		fmt.Printf("snapshot %s of %s (%s)\n", s.Name, s.Source, fmtSize(s.SizeBytes))
	case "clone":
		if *snap == "" || *name == "" {
			log.Fatal("volume clone: -snap and -name are required")
		}
		var v volumeRow
		req := map[string]any{"name": *name, "qos_class": *class}
		if err := volumeDo("POST", base+"/snapshots/"+*snap+"/clones", req, &v); err != nil {
			log.Fatal(err)
		}
		fmt.Printf("clone %s of snapshot %s (%s, class %s)\n", v.Name, v.Parent, fmtSize(v.SizeBytes), v.QoSClass)
	case "delete":
		switch {
		case *name != "":
			if err := volumeDo("DELETE", base+"/volumes/"+*name, nil, nil); err != nil {
				log.Fatal(err)
			}
			fmt.Printf("deleted volume %s\n", *name)
		case *snap != "":
			if err := volumeDo("DELETE", base+"/snapshots/"+*snap, nil, nil); err != nil {
				log.Fatal(err)
			}
			fmt.Printf("deleted snapshot %s\n", *snap)
		default:
			log.Fatal("volume delete: -name (volume) or -snap (snapshot) is required")
		}
	default:
		log.Fatalf("unknown volume verb %q (create|list|resize|snapshot|clone|delete)", verb)
	}
}
