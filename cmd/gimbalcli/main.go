// Command gimbalcli is the initiator-side load generator and admin tool
// for gimbald: an fio-style closed-loop benchmark over the TCP capsule
// protocol, with the Gimbal credit gate on the client when the target runs
// the Gimbal scheme.
//
//	gimbalcli -addr 127.0.0.1:4420 -op read -size 4096 -qd 32 -dur 10s
//	gimbalcli -addr 127.0.0.1:4420 -op write -size 131072 -qd 4 -seq -dur 5s
//
// -conns N spreads the queue depth over N TCP connections (worker i uses
// connection i%N), matching a reactor-sharded target (gimbald -reactors)
// where each connection lands on one shard: one connection serializes on a
// single reactor, N connections exercise the sharded datapath.
//
// The stats subcommand renders the daemon's observability endpoint: it
// samples /stats twice and reports per-tenant interval bandwidth, credit,
// and the per-SSD control-loop state (write cost, target rate, latency
// EWMAs). -tenant narrows the per-tenant rows to one name.
//
//	gimbalcli stats -admin 127.0.0.1:9420 -interval 1s [-tenant t0]
//
// The top subcommand is the live view: it polls /stats and /slo together
// and redraws a combined per-tenant table (interval bandwidth, credit,
// SLO attainment, burn rate) every interval until interrupted.
//
//	gimbalcli top -admin 127.0.0.1:9420 -interval 1s [-n 10]
//
// The volume subcommand provisions against the daemon's CSI-shaped
// control plane: create/list/resize volumes, cut snapshots, clone them,
// and delete either — see volume.go.
//
//	gimbalcli volume create -admin 127.0.0.1:9420 -name v0 -size 1G -class gold
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"log"
	"math/rand"
	"net/http"
	"os"
	"sync"
	"sync/atomic"
	"time"

	"gimbal/internal/fabric"
	"gimbal/internal/nvme"
	"gimbal/internal/obs"
	"gimbal/internal/stats"
)

func main() {
	if len(os.Args) > 1 && os.Args[1] == "stats" {
		statsMain(os.Args[2:])
		return
	}
	if len(os.Args) > 1 && os.Args[1] == "top" {
		topMain(os.Args[2:])
		return
	}
	if len(os.Args) > 1 && os.Args[1] == "volume" {
		volumeMain(os.Args[2:])
		return
	}
	var (
		addr   = flag.String("addr", "127.0.0.1:4420", "target address")
		scheme = flag.String("scheme", "gimbal", "client gate matching the target scheme")
		op     = flag.String("op", "read", "read or write")
		size   = flag.Int("size", 4096, "IO size in bytes (4KB aligned)")
		qd     = flag.Int("qd", 32, "queue depth")
		conns  = flag.Int("conns", 1, "TCP connections; workers round-robin across them")
		seq    = flag.Bool("seq", false, "sequential offsets")
		nsid   = flag.Int("ns", 0, "namespace (SSD index)")
		span   = flag.Int64("span", 1<<30, "offset range in bytes")
		dur    = flag.Duration("dur", 10*time.Second, "run duration")
	)
	flag.Parse()

	sch, err := fabric.ParseScheme(*scheme)
	if err != nil {
		log.Fatal(err)
	}
	if *conns < 1 {
		log.Fatalf("-conns %d: need at least one connection", *conns)
	}
	clients := make([]*fabric.TCPClient, *conns)
	for i := range clients {
		clients[i], err = fabric.DialTCP(*addr, sch)
		if err != nil {
			log.Fatal(err)
		}
		defer clients[i].Close()
	}

	opcode := nvme.OpRead
	if *op == "write" {
		opcode = nvme.OpWrite
	}
	var payload []byte
	if opcode == nvme.OpWrite {
		payload = make([]byte, *size)
	}

	var (
		mu    sync.Mutex
		hist  = stats.NewHistogram()
		bytes atomic.Int64
		errs  atomic.Int64
		stop  = time.Now().Add(*dur)
		wg    sync.WaitGroup
	)
	var cursor atomic.Int64
	nextOffset := func(r *rand.Rand) int64 {
		slots := *span / int64(*size)
		if *seq {
			return (cursor.Add(1) % slots) * int64(*size)
		}
		return r.Int63n(slots) * int64(*size)
	}
	for i := 0; i < *qd; i++ {
		wg.Add(1)
		go func(seed int64, client *fabric.TCPClient) {
			defer wg.Done()
			r := rand.New(rand.NewSource(seed))
			for time.Now().Before(stop) {
				t0 := time.Now()
				rsp, err := client.Do(&fabric.CommandCapsule{
					Opcode: opcode,
					NSID:   uint8(*nsid),
					SLBA:   uint64(nextOffset(r)) / 4096,
					Length: uint32(*size),
					Data:   payload,
				})
				if err != nil {
					errs.Add(1)
					return
				}
				if rsp.Status != nvme.StatusOK {
					errs.Add(1)
					continue
				}
				lat := time.Since(t0).Nanoseconds()
				mu.Lock()
				hist.Record(lat)
				mu.Unlock()
				bytes.Add(int64(*size))
			}
		}(int64(i)+1, clients[i%*conns])
	}
	wg.Wait()

	headroom := 0
	for _, c := range clients {
		headroom += c.Headroom()
	}
	sec := dur.Seconds()
	fmt.Printf("%s %dB qd%d conns%d: %.1f MB/s, %.0f IOPS\n",
		*op, *size, *qd, *conns, float64(bytes.Load())/1e6/sec, float64(hist.Count())/sec)
	fmt.Printf("latency: avg %.0fus p50 %dus p99 %dus p99.9 %dus max %dus\n",
		hist.Mean()/1e3, hist.P50()/1000, hist.P99()/1000, hist.P999()/1000, hist.Max()/1000)
	fmt.Printf("errors: %d, credit headroom at exit: %d\n", errs.Load(), headroom)
}

// fetchStats GETs and decodes one /stats snapshot.
func fetchStats(url string) (*fabric.TargetStats, error) {
	rsp, err := http.Get(url)
	if err != nil {
		return nil, err
	}
	defer rsp.Body.Close()
	if rsp.StatusCode != http.StatusOK {
		return nil, fmt.Errorf("%s: %s", url, rsp.Status)
	}
	var ts fabric.TargetStats
	if err := json.NewDecoder(rsp.Body).Decode(&ts); err != nil {
		return nil, err
	}
	return &ts, nil
}

// statsMain implements `gimbalcli stats`: two /stats samples an interval
// apart, rendered as per-SSD control-loop state plus per-tenant interval
// bandwidth, IOPS, credit, and live fairness.
func statsMain(args []string) {
	fs := flag.NewFlagSet("stats", flag.ExitOnError)
	var (
		admin    = fs.String("admin", "127.0.0.1:9420", "gimbald observability address")
		interval = fs.Duration("interval", time.Second, "bandwidth sampling interval")
		tenant   = fs.String("tenant", "", "show only this tenant's rows")
	)
	fs.Parse(args)
	url := "http://" + *admin + "/stats"

	before, err := fetchStats(url)
	if err != nil {
		log.Fatal(err)
	}
	time.Sleep(*interval)
	after, err := fetchStats(url)
	if err != nil {
		log.Fatal(err)
	}

	// Index the first sample's per-tenant byte counts for interval rates.
	type key struct {
		ssd    int
		tenant string
	}
	prevBytes := map[key]int64{}
	prevOps := map[key]int64{}
	for _, s := range before.SSDs {
		for _, t := range s.Tenants {
			prevBytes[key{t.SSD, t.Tenant}] = t.Bytes
			prevOps[key{t.SSD, t.Tenant}] = t.Ops
		}
	}
	dt := float64(after.NowNs-before.NowNs) / 1e9
	if dt <= 0 {
		dt = interval.Seconds()
	}

	fmt.Printf("target: scheme=%s ssds=%d jain=%.3f (interval %.2fs)\n",
		after.Scheme, len(after.SSDs), after.Jain, dt)
	for _, s := range after.SSDs {
		fmt.Printf("ssd %d:", s.SSD)
		if s.WriteCost > 0 {
			fmt.Printf(" write_cost=%.2f target=%.0fMB/s completion=%.0fMB/s ewma r/w=%.0f/%.0fus queued=%d",
				s.WriteCost, s.TargetRateMBps, s.CompletionRateMBps,
				s.ReadEWMAUs, s.WriteEWMAUs, s.Queued)
		}
		if s.Device != nil {
			fmt.Printf(" WA=%.2f gc_pages=%d", s.Device.WriteAmp, s.Device.GCMovedPages)
		}
		fmt.Println()
		rows := s.Tenants
		if *tenant != "" {
			rows = rows[:0:0]
			for _, t := range s.Tenants {
				if t.Tenant == *tenant {
					rows = append(rows, t)
				}
			}
		}
		if len(rows) == 0 {
			continue
		}
		fmt.Printf("  %-18s %10s %10s %8s %8s %8s\n",
			"tenant", "MB/s", "IOPS", "credit", "f-util", "errors")
		for _, t := range rows {
			k := key{t.SSD, t.Tenant}
			dBytes := float64(t.Bytes - prevBytes[k])
			dOps := float64(t.Ops - prevOps[k])
			fmt.Printf("  %-18s %10.1f %10.0f %8d %8.2f %8d\n",
				t.Tenant, dBytes/1e6/dt, dOps/dt, t.Credit, t.FUtil, t.Errors)
		}
	}
}

// fetchSLO GETs and decodes one /slo report. A daemon running without the
// SLO engine serves "{}", which decodes to an empty report.
func fetchSLO(url string) (*obs.SLOReport, error) {
	rsp, err := http.Get(url)
	if err != nil {
		return nil, err
	}
	defer rsp.Body.Close()
	if rsp.StatusCode != http.StatusOK {
		return nil, fmt.Errorf("%s: %s", url, rsp.Status)
	}
	var rep obs.SLOReport
	if err := json.NewDecoder(rsp.Body).Decode(&rep); err != nil {
		return nil, err
	}
	return &rep, nil
}

// topMain implements `gimbalcli top`: a live per-tenant view joining
// /stats (interval bandwidth, credit) with /slo (attainment, burn rate,
// correlated events), redrawn every interval.
func topMain(args []string) {
	fs := flag.NewFlagSet("top", flag.ExitOnError)
	var (
		admin    = fs.String("admin", "127.0.0.1:9420", "gimbald observability address")
		interval = fs.Duration("interval", time.Second, "refresh interval")
		n        = fs.Int("n", 0, "iterations before exiting (0 = until interrupted)")
		tenant   = fs.String("tenant", "", "show only this tenant's rows")
	)
	fs.Parse(args)
	statsURL := "http://" + *admin + "/stats"
	sloURL := "http://" + *admin + "/slo"

	type key struct {
		ssd    int
		tenant string
	}
	var prev *fabric.TargetStats
	for i := 0; *n == 0 || i < *n; i++ {
		if prev != nil {
			time.Sleep(*interval)
		}
		cur, err := fetchStats(statsURL)
		if err != nil {
			log.Fatal(err)
		}
		slo, err := fetchSLO(sloURL)
		if err != nil {
			log.Fatal(err)
		}
		if prev == nil {
			// The first sample only anchors the interval rates.
			prev = cur
			time.Sleep(*interval)
			cur, err = fetchStats(statsURL)
			if err != nil {
				log.Fatal(err)
			}
			if slo, err = fetchSLO(sloURL); err != nil {
				log.Fatal(err)
			}
		}
		prevBytes := map[key]int64{}
		prevOps := map[key]int64{}
		for _, s := range prev.SSDs {
			for _, t := range s.Tenants {
				prevBytes[key{t.SSD, t.Tenant}] = t.Bytes
				prevOps[key{t.SSD, t.Tenant}] = t.Ops
			}
		}
		dt := float64(cur.NowNs-prev.NowNs) / 1e9
		if dt <= 0 {
			dt = interval.Seconds()
		}
		sloRows := map[string]obs.SLOTenantReport{}
		for _, tr := range slo.Tenants {
			sloRows[tr.Tenant] = tr
		}

		fmt.Print("\033[H\033[2J") // clear, cursor home
		fmt.Printf("gimbal top — scheme=%s ssds=%d jain=%.3f interval=%.1fs\n",
			cur.Scheme, len(cur.SSDs), cur.Jain, dt)
		fmt.Printf("%-18s %4s %10s %10s %8s %8s %8s %8s\n",
			"tenant", "ssd", "MB/s", "IOPS", "credit", "met%", "burn", "errors")
		for _, s := range cur.SSDs {
			for _, t := range s.Tenants {
				if *tenant != "" && t.Tenant != *tenant {
					continue
				}
				k := key{t.SSD, t.Tenant}
				met, burn := 100.0, 0.0
				if tr, ok := sloRows[t.Tenant]; ok {
					met = tr.MetFraction * 100
					// The longest window's burn is the most stable signal.
					if len(tr.Windows) > 0 {
						burn = tr.Windows[len(tr.Windows)-1].BurnRate
					}
				}
				fmt.Printf("%-18s %4d %10.1f %10.0f %8d %8.2f %8.2f %8d\n",
					t.Tenant, t.SSD,
					float64(t.Bytes-prevBytes[k])/1e6/dt,
					float64(t.Ops-prevOps[k])/dt,
					t.Credit, met, burn, t.Errors)
			}
		}
		active := 0
		for _, ev := range slo.Events {
			if ev.Active {
				active++
			}
		}
		if len(slo.Events) > 0 {
			last := slo.Events[len(slo.Events)-1]
			fmt.Printf("events: %d correlated (%d active), last: %s %s\n",
				len(slo.Events), active, last.Kind, last.Detail)
		}
		prev = cur
	}
}
