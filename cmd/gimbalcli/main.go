// Command gimbalcli is the initiator-side load generator and admin tool
// for gimbald: an fio-style closed-loop benchmark over the TCP capsule
// protocol, with the Gimbal credit gate on the client when the target runs
// the Gimbal scheme.
//
//	gimbalcli -addr 127.0.0.1:4420 -op read -size 4096 -qd 32 -dur 10s
//	gimbalcli -addr 127.0.0.1:4420 -op write -size 131072 -qd 4 -seq -dur 5s
package main

import (
	"flag"
	"fmt"
	"log"
	"math/rand"
	"sync"
	"sync/atomic"
	"time"

	"gimbal/internal/fabric"
	"gimbal/internal/nvme"
	"gimbal/internal/stats"
)

func main() {
	var (
		addr   = flag.String("addr", "127.0.0.1:4420", "target address")
		scheme = flag.String("scheme", "gimbal", "client gate matching the target scheme")
		op     = flag.String("op", "read", "read or write")
		size   = flag.Int("size", 4096, "IO size in bytes (4KB aligned)")
		qd     = flag.Int("qd", 32, "queue depth")
		seq    = flag.Bool("seq", false, "sequential offsets")
		nsid   = flag.Int("ns", 0, "namespace (SSD index)")
		span   = flag.Int64("span", 1<<30, "offset range in bytes")
		dur    = flag.Duration("dur", 10*time.Second, "run duration")
	)
	flag.Parse()

	sch, err := fabric.ParseScheme(*scheme)
	if err != nil {
		log.Fatal(err)
	}
	client, err := fabric.DialTCP(*addr, sch)
	if err != nil {
		log.Fatal(err)
	}
	defer client.Close()

	opcode := nvme.OpRead
	if *op == "write" {
		opcode = nvme.OpWrite
	}
	var payload []byte
	if opcode == nvme.OpWrite {
		payload = make([]byte, *size)
	}

	var (
		mu    sync.Mutex
		hist  = stats.NewHistogram()
		bytes atomic.Int64
		errs  atomic.Int64
		stop  = time.Now().Add(*dur)
		wg    sync.WaitGroup
	)
	var cursor atomic.Int64
	nextOffset := func(r *rand.Rand) int64 {
		slots := *span / int64(*size)
		if *seq {
			return (cursor.Add(1) % slots) * int64(*size)
		}
		return r.Int63n(slots) * int64(*size)
	}
	for i := 0; i < *qd; i++ {
		wg.Add(1)
		go func(seed int64) {
			defer wg.Done()
			r := rand.New(rand.NewSource(seed))
			for time.Now().Before(stop) {
				t0 := time.Now()
				rsp, err := client.Do(&fabric.CommandCapsule{
					Opcode: opcode,
					NSID:   uint8(*nsid),
					SLBA:   uint64(nextOffset(r)) / 4096,
					Length: uint32(*size),
					Data:   payload,
				})
				if err != nil {
					errs.Add(1)
					return
				}
				if rsp.Status != nvme.StatusOK {
					errs.Add(1)
					continue
				}
				lat := time.Since(t0).Nanoseconds()
				mu.Lock()
				hist.Record(lat)
				mu.Unlock()
				bytes.Add(int64(*size))
			}
		}(int64(i) + 1)
	}
	wg.Wait()

	sec := dur.Seconds()
	fmt.Printf("%s %dB qd%d: %.1f MB/s, %.0f IOPS\n",
		*op, *size, *qd, float64(bytes.Load())/1e6/sec, float64(hist.Count())/sec)
	fmt.Printf("latency: avg %.0fus p50 %dus p99 %dus p99.9 %dus max %dus\n",
		hist.Mean()/1e3, hist.P50()/1000, hist.P99()/1000, hist.P999()/1000, hist.Max()/1000)
	fmt.Printf("errors: %d, credit headroom at exit: %d\n", errs.Load(), client.Headroom())
}
