// Command gimbalbench regenerates the paper's tables and figures.
//
// Usage:
//
//	gimbalbench -list
//	gimbalbench -exp fig6
//	gimbalbench -exp fig6,fig7 -format csv
//	gimbalbench -exp all -parallel 8
//
// Each experiment prints the rows/series the corresponding paper figure or
// table reports, with a note summarizing the shape the paper observed.
// EXPERIMENTS.md records the paper-vs-measured comparison.
//
// The chaos-* family (chaos-brownout, chaos-fabric, chaos-disconnect)
// exercises the fault-injection subsystem instead of a paper figure: a
// scripted SSD brownout, a lossy/delaying/duplicating fabric, and a tenant
// disconnect, each reporting how the schemes degrade and recover. Chaos
// runs are seed-deterministic like everything else.
//
// Experiments are independent simulations, so the sweep runs them on a
// worker pool (-parallel, default GOMAXPROCS). Every experiment owns its
// simulation loop, RNG seeds, and caches, so the output is byte-identical
// at any parallelism level; reports are always emitted in the requested
// order. -parallel 1 reproduces the serial sweep exactly.
package main

import (
	"flag"
	"fmt"
	"os"
	"runtime"
	"runtime/pprof"
	"strings"

	"gimbal/internal/bench"
)

func main() {
	var (
		exp        = flag.String("exp", "", "experiment id(s), comma separated, or 'all'")
		format     = flag.String("format", "table", "output format: table, csv, or json")
		list       = flag.Bool("list", false, "list experiment ids")
		parallel   = flag.Int("parallel", runtime.GOMAXPROCS(0), "experiments to run concurrently")
		cpuprofile = flag.String("cpuprofile", "", "write a CPU profile of the sweep to this file")
		memprofile = flag.String("memprofile", "", "write an allocation profile of the sweep to this file")
	)
	flag.Parse()

	if *cpuprofile != "" {
		f, err := os.Create(*cpuprofile)
		if err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
		defer f.Close()
		if err := pprof.StartCPUProfile(f); err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
		defer pprof.StopCPUProfile()
	}
	if *memprofile != "" {
		defer func() {
			f, err := os.Create(*memprofile)
			if err != nil {
				fmt.Fprintln(os.Stderr, err)
				return
			}
			defer f.Close()
			runtime.GC() // flush the final allocation state before snapshotting
			if err := pprof.Lookup("allocs").WriteTo(f, 0); err != nil {
				fmt.Fprintln(os.Stderr, err)
			}
		}()
	}

	if *list || *exp == "" {
		fmt.Println("experiments:")
		for _, id := range bench.IDs() {
			e, _ := bench.Lookup(id)
			fmt.Printf("  %-16s %s\n", id, e.Title)
		}
		if *exp == "" && !*list {
			fmt.Println("\nrun with -exp <id> or -exp all")
		}
		return
	}

	var ids []string
	if *exp == "all" {
		ids = bench.IDs()
	} else {
		for _, id := range strings.Split(*exp, ",") {
			ids = append(ids, strings.TrimSpace(id))
		}
	}

	failed := false
	emit := func(rp *bench.Report) {
		switch *format {
		case "json":
			if err := rp.WriteJSON(os.Stdout); err != nil {
				fmt.Fprintln(os.Stderr, err)
				failed = true
			}
		case "csv":
			for _, r := range rp.Results {
				r.WriteCSV(os.Stdout)
			}
		default:
			for _, r := range rp.Results {
				r.WriteTable(os.Stdout)
			}
		}
		fmt.Fprintf(os.Stderr, "[%s done in %.1fs]\n", rp.Experiment, rp.WallSeconds)
	}
	if _, err := bench.RunAll(ids, *parallel, emit); err != nil {
		fmt.Fprintf(os.Stderr, "%v (try -list)\n", err)
		os.Exit(1)
	}
	if failed {
		os.Exit(1)
	}
}
