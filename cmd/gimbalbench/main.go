// Command gimbalbench regenerates the paper's tables and figures.
//
// Usage:
//
//	gimbalbench -list
//	gimbalbench -exp fig6
//	gimbalbench -exp fig6,fig7 -format csv
//	gimbalbench -exp all
//
// Each experiment prints the rows/series the corresponding paper figure or
// table reports, with a note summarizing the shape the paper observed.
// EXPERIMENTS.md records the paper-vs-measured comparison.
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"
	"time"

	"gimbal/internal/bench"
)

func main() {
	var (
		exp    = flag.String("exp", "", "experiment id(s), comma separated, or 'all'")
		format = flag.String("format", "table", "output format: table, csv, or json")
		list   = flag.Bool("list", false, "list experiment ids")
	)
	flag.Parse()

	if *list || *exp == "" {
		fmt.Println("experiments:")
		for _, id := range bench.IDs() {
			e, _ := bench.Lookup(id)
			fmt.Printf("  %-16s %s\n", id, e.Title)
		}
		if *exp == "" && !*list {
			fmt.Println("\nrun with -exp <id> or -exp all")
		}
		return
	}

	var ids []string
	if *exp == "all" {
		ids = bench.IDs()
	} else {
		ids = strings.Split(*exp, ",")
	}
	for _, id := range ids {
		id = strings.TrimSpace(id)
		e, ok := bench.Lookup(id)
		if !ok {
			fmt.Fprintf(os.Stderr, "unknown experiment %q (try -list)\n", id)
			os.Exit(1)
		}
		start := time.Now()
		bench.DrainObsRuns() // discard blocks from any prior stray runs
		results := e.Run()
		switch *format {
		case "json":
			report := &bench.Report{
				Experiment:    e.ID,
				Title:         e.Title,
				Results:       results,
				Observability: bench.DrainObsRuns(),
			}
			if err := report.WriteJSON(os.Stdout); err != nil {
				fmt.Fprintln(os.Stderr, err)
				os.Exit(1)
			}
		case "csv":
			for _, r := range results {
				r.WriteCSV(os.Stdout)
			}
		default:
			for _, r := range results {
				r.WriteTable(os.Stdout)
			}
		}
		fmt.Fprintf(os.Stderr, "[%s done in %.1fs]\n", id, time.Since(start).Seconds())
	}
}
