// Command gimbalbench regenerates the paper's tables and figures.
//
// Usage:
//
//	gimbalbench -list
//	gimbalbench -exp fig6
//	gimbalbench -exp fig6,fig7 -format csv
//	gimbalbench -exp all
//
// Each experiment prints the rows/series the corresponding paper figure or
// table reports, with a note summarizing the shape the paper observed.
// EXPERIMENTS.md records the paper-vs-measured comparison.
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"
	"time"

	"gimbal/internal/bench"
)

func main() {
	var (
		exp    = flag.String("exp", "", "experiment id(s), comma separated, or 'all'")
		format = flag.String("format", "table", "output format: table or csv")
		list   = flag.Bool("list", false, "list experiment ids")
	)
	flag.Parse()

	if *list || *exp == "" {
		fmt.Println("experiments:")
		for _, id := range bench.IDs() {
			e, _ := bench.Lookup(id)
			fmt.Printf("  %-16s %s\n", id, e.Title)
		}
		if *exp == "" && !*list {
			fmt.Println("\nrun with -exp <id> or -exp all")
		}
		return
	}

	var ids []string
	if *exp == "all" {
		ids = bench.IDs()
	} else {
		ids = strings.Split(*exp, ",")
	}
	for _, id := range ids {
		id = strings.TrimSpace(id)
		e, ok := bench.Lookup(id)
		if !ok {
			fmt.Fprintf(os.Stderr, "unknown experiment %q (try -list)\n", id)
			os.Exit(1)
		}
		start := time.Now()
		results := e.Run()
		for _, r := range results {
			switch *format {
			case "csv":
				r.WriteCSV(os.Stdout)
			default:
				r.WriteTable(os.Stdout)
			}
		}
		fmt.Fprintf(os.Stderr, "[%s done in %.1fs]\n", id, time.Since(start).Seconds())
	}
}
