// gimbald's volume control plane: a CSI-shaped JSON facade over
// internal/volume mounted on the admin mux. The daemon's data path speaks
// raw SSD offsets over TCP, so this manager runs provisioning-only (nil
// event loop, no device trims): it owns names, sizes, QoS classes,
// snapshots/clones, and exact capacity accounting, and initiators carve
// their offset ranges out of what they provision here.
//
//	GET    /volumes                   list volumes + usage
//	POST   /volumes                   {"name","size_bytes","qos_class","thick"}
//	GET    /volumes/{name}            one volume
//	DELETE /volumes/{name}            delete volume
//	POST   /volumes/{name}/resize     {"size_bytes"}
//	POST   /volumes/{name}/snapshots  {"name"} -> snapshot
//	GET    /snapshots                 list snapshots
//	GET    /snapshots/{name}          one snapshot
//	DELETE /snapshots/{name}          delete snapshot (409 while clones live)
//	POST   /snapshots/{name}/clones   {"name","qos_class"} -> writable clone
//	GET    /qos-classes               the class menu and compiled policy
package main

import (
	"crypto/subtle"
	"encoding/json"
	"errors"
	"net/http"
	"strings"
	"sync"
	"sync/atomic"

	"gimbal/internal/blobstore"
	"gimbal/internal/volume"
)

// volumeServer serializes HTTP access to a provisioning-only Manager. The
// admin mux serves requests concurrently, so every entry point takes mu;
// the draining latch flips on SIGTERM and fails mutations with 503 while
// reads keep serving until the listener closes.
type volumeServer struct {
	mu       sync.Mutex
	m        *volume.Manager
	token    string // bearer token gating mutations; "" leaves them open
	draining atomic.Bool
}

// newVolumeServer builds the control plane over the daemon's SSD geometry.
// Backends carry capacity only: constant headroom (no live load signal on
// the control path) and no target (nothing submits device IO). A non-empty
// token makes every mutating endpoint require "Authorization: Bearer
// <token>"; reads stay open (they carry no more than /stats already does).
func newVolumeServer(classes *volume.ClassSet, ssds int, capacity int64, token string) *volumeServer {
	bc := blobstore.DefaultConfig()
	bc.Replicas = 1
	caps := make([]int64, ssds)
	backends := make([]*blobstore.Backend, ssds)
	for i := range backends {
		caps[i] = capacity
		backends[i] = &blobstore.Backend{
			Headroom: func() int { return 1 },
			Capacity: capacity,
		}
	}
	local := blobstore.NewLocal(blobstore.NewGlobal(bc, caps), backends)
	return &volumeServer{
		m:     volume.NewManager(nil, volume.DefaultConfig(), local, classes, nil),
		token: token,
	}
}

// Drain flips the server into shutdown mode: mutating endpoints return
// 503 so orchestrators stop provisioning against a dying daemon, while
// reads (state recovery by a successor) keep working.
func (vs *volumeServer) Drain() { vs.draining.Store(true) }

func (vs *volumeServer) register(mux *http.ServeMux) {
	mux.HandleFunc("/volumes", vs.handleVolumes)
	mux.HandleFunc("/volumes/", vs.handleVolume)
	mux.HandleFunc("/snapshots", vs.handleSnapshots)
	mux.HandleFunc("/snapshots/", vs.handleSnapshot)
	mux.HandleFunc("/qos-classes", vs.handleClasses)
}

// Wire shapes.

type volumeInfo struct {
	Name           string `json:"name"`
	SizeBytes      int64  `json:"size_bytes"`
	QoSClass       string `json:"qos_class"`
	Thick          bool   `json:"thick,omitempty"`
	Parent         string `json:"parent,omitempty"`
	AllocatedBytes int64  `json:"allocated_bytes"`
}

type snapshotInfo struct {
	Name      string `json:"name"`
	Source    string `json:"source"`
	SizeBytes int64  `json:"size_bytes"`
	Clones    int    `json:"clones"`
}

type createVolumeReq struct {
	Name      string `json:"name"`
	SizeBytes int64  `json:"size_bytes"`
	QoSClass  string `json:"qos_class"`
	Thick     bool   `json:"thick"`
}

type resizeReq struct {
	SizeBytes int64 `json:"size_bytes"`
}

type snapshotReq struct {
	Name string `json:"name"`
}

type cloneReq struct {
	Name     string `json:"name"`
	QoSClass string `json:"qos_class"`
}

func volInfo(v *volume.Volume) volumeInfo {
	return volumeInfo{
		Name:           v.Name(),
		SizeBytes:      v.Size(),
		QoSClass:       v.ClassName(),
		Thick:          v.Thick(),
		Parent:         v.Parent(),
		AllocatedBytes: v.AllocatedBytes(),
	}
}

func snapInfo(s *volume.Snapshot) snapshotInfo {
	return snapshotInfo{Name: s.Name(), Source: s.Source(), SizeBytes: s.Size(), Clones: s.Clones()}
}

// volumeHTTPStatus maps the control plane's sentinel errors onto the CSI
// vocabulary: 404 unknown object, 409 name/lifecycle conflict, 507 out of
// capacity, 400 malformed request.
func volumeHTTPStatus(err error) int {
	switch {
	case errors.Is(err, volume.ErrNotFound):
		return http.StatusNotFound
	case errors.Is(err, volume.ErrExists), errors.Is(err, volume.ErrSnapshotInUse):
		return http.StatusConflict
	case errors.Is(err, volume.ErrOutOfCapacity):
		return http.StatusInsufficientStorage
	case errors.Is(err, volume.ErrUnknownClass), errors.Is(err, volume.ErrInvalid):
		return http.StatusBadRequest
	default:
		return http.StatusInternalServerError
	}
}

func writeJSON(w http.ResponseWriter, status int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	_ = enc.Encode(v)
}

func writeVolumeError(w http.ResponseWriter, err error) {
	writeJSON(w, volumeHTTPStatus(err), map[string]string{"error": err.Error()})
}

// gate authenticates and admits one mutation: bearer-token check first
// (constant-time compare), then the draining latch, then body decoding.
// It returns false after writing the error response.
func (vs *volumeServer) gate(w http.ResponseWriter, r *http.Request, body any) bool {
	if vs.token != "" {
		got, ok := strings.CutPrefix(r.Header.Get("Authorization"), "Bearer ")
		if !ok || subtle.ConstantTimeCompare([]byte(got), []byte(vs.token)) != 1 {
			w.Header().Set("WWW-Authenticate", `Bearer realm="gimbald volumes"`)
			writeJSON(w, http.StatusUnauthorized, map[string]string{"error": "missing or invalid bearer token"})
			return false
		}
	}
	if vs.draining.Load() {
		writeJSON(w, http.StatusServiceUnavailable, map[string]string{"error": "draining: volume provisioning disabled during shutdown"})
		return false
	}
	if body != nil {
		if err := json.NewDecoder(r.Body).Decode(body); err != nil {
			writeJSON(w, http.StatusBadRequest, map[string]string{"error": "bad request body: " + err.Error()})
			return false
		}
	}
	return true
}

func (vs *volumeServer) handleVolumes(w http.ResponseWriter, r *http.Request) {
	vs.mu.Lock()
	defer vs.mu.Unlock()
	switch r.Method {
	case http.MethodGet:
		vols := vs.m.List()
		out := struct {
			Usage   volume.Usage `json:"usage"`
			Volumes []volumeInfo `json:"volumes"`
		}{Usage: vs.m.Usage(), Volumes: make([]volumeInfo, 0, len(vols))}
		for _, v := range vols {
			out.Volumes = append(out.Volumes, volInfo(v))
		}
		writeJSON(w, http.StatusOK, out)
	case http.MethodPost:
		var req createVolumeReq
		if !vs.gate(w, r, &req) {
			return
		}
		v, err := vs.m.Create(volume.Spec{Name: req.Name, Size: req.SizeBytes, Class: req.QoSClass, Thick: req.Thick})
		if err != nil {
			writeVolumeError(w, err)
			return
		}
		writeJSON(w, http.StatusCreated, volInfo(v))
	default:
		w.WriteHeader(http.StatusMethodNotAllowed)
	}
}

// handleVolume serves /volumes/{name} and its /resize and /snapshots
// sub-resources.
func (vs *volumeServer) handleVolume(w http.ResponseWriter, r *http.Request) {
	rest := strings.TrimPrefix(r.URL.Path, "/volumes/")
	name, sub, _ := strings.Cut(rest, "/")
	if name == "" {
		http.NotFound(w, r)
		return
	}
	vs.mu.Lock()
	defer vs.mu.Unlock()
	switch {
	case sub == "" && r.Method == http.MethodGet:
		v, err := vs.m.Lookup(name)
		if err != nil {
			writeVolumeError(w, err)
			return
		}
		writeJSON(w, http.StatusOK, volInfo(v))
	case sub == "" && r.Method == http.MethodDelete:
		if !vs.gate(w, r, nil) {
			return
		}
		if err := vs.m.Delete(name); err != nil {
			writeVolumeError(w, err)
			return
		}
		w.WriteHeader(http.StatusNoContent)
	case sub == "resize" && r.Method == http.MethodPost:
		var req resizeReq
		if !vs.gate(w, r, &req) {
			return
		}
		if err := vs.m.Resize(name, req.SizeBytes); err != nil {
			writeVolumeError(w, err)
			return
		}
		v, _ := vs.m.Lookup(name)
		writeJSON(w, http.StatusOK, volInfo(v))
	case sub == "snapshots" && r.Method == http.MethodPost:
		var req snapshotReq
		if !vs.gate(w, r, &req) {
			return
		}
		s, err := vs.m.Snapshot(name, req.Name)
		if err != nil {
			writeVolumeError(w, err)
			return
		}
		writeJSON(w, http.StatusCreated, snapInfo(s))
	default:
		w.WriteHeader(http.StatusMethodNotAllowed)
	}
}

func (vs *volumeServer) handleSnapshots(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodGet {
		w.WriteHeader(http.StatusMethodNotAllowed)
		return
	}
	vs.mu.Lock()
	defer vs.mu.Unlock()
	snaps := vs.m.ListSnapshots()
	out := make([]snapshotInfo, 0, len(snaps))
	for _, s := range snaps {
		out = append(out, snapInfo(s))
	}
	writeJSON(w, http.StatusOK, out)
}

// handleSnapshot serves /snapshots/{name} and /snapshots/{name}/clones.
func (vs *volumeServer) handleSnapshot(w http.ResponseWriter, r *http.Request) {
	rest := strings.TrimPrefix(r.URL.Path, "/snapshots/")
	name, sub, _ := strings.Cut(rest, "/")
	if name == "" {
		http.NotFound(w, r)
		return
	}
	vs.mu.Lock()
	defer vs.mu.Unlock()
	switch {
	case sub == "" && r.Method == http.MethodGet:
		s, err := vs.m.LookupSnapshot(name)
		if err != nil {
			writeVolumeError(w, err)
			return
		}
		writeJSON(w, http.StatusOK, snapInfo(s))
	case sub == "" && r.Method == http.MethodDelete:
		if !vs.gate(w, r, nil) {
			return
		}
		if err := vs.m.DeleteSnapshot(name); err != nil {
			writeVolumeError(w, err)
			return
		}
		w.WriteHeader(http.StatusNoContent)
	case sub == "clones" && r.Method == http.MethodPost:
		var req cloneReq
		if !vs.gate(w, r, &req) {
			return
		}
		v, err := vs.m.Clone(name, req.Name, req.QoSClass)
		if err != nil {
			writeVolumeError(w, err)
			return
		}
		writeJSON(w, http.StatusCreated, volInfo(v))
	default:
		w.WriteHeader(http.StatusMethodNotAllowed)
	}
}

func (vs *volumeServer) handleClasses(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodGet {
		w.WriteHeader(http.StatusMethodNotAllowed)
		return
	}
	vs.mu.Lock()
	defer vs.mu.Unlock()
	cs := vs.m.Classes()
	type classInfo struct {
		Name     string `json:"name"`
		Weight   int    `json:"weight"`
		Priority int    `json:"priority"`
	}
	out := make([]classInfo, 0, cs.Len())
	for i := 0; i < cs.Len(); i++ {
		sp := cs.Spec(i)
		out = append(out, classInfo{Name: sp.Name, Weight: sp.Weight, Priority: int(sp.Priority)})
	}
	writeJSON(w, http.StatusOK, out)
}
