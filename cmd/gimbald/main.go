// Command gimbald is a live NVMe-oF-style storage target over TCP: a
// simulated JBOF (wall-clock SSD models) fronted by the Gimbal storage
// switch — or any of the baseline schemes — serving the capsule protocol
// of internal/fabric on a listening socket.
//
//	gimbald -listen 127.0.0.1:4420 -ssds 4 -scheme gimbal -cond fragmented
//
// A second listener (-admin, default 127.0.0.1:9420) serves the
// observability endpoint:
//
//	/metrics        Prometheus text format (control loop, SSD, fabric)
//	/stats          JSON snapshot: per-tenant bandwidth, credits, write cost
//	/trace          per-IO lifecycle traces (queue/pacing/device spans), JSONL
//	/debug/pprof/   the standard Go profiler
//
// Drive it with cmd/gimbalcli; `gimbalcli stats` renders /stats.
package main

import (
	"context"
	"encoding/json"
	"flag"
	"fmt"
	"log"
	"net/http"
	"net/http/pprof"
	"os"
	"os/signal"
	"syscall"
	"time"

	"gimbal/internal/fabric"
	"gimbal/internal/obs"
	"gimbal/internal/sim"
	"gimbal/internal/ssd"
)

func main() {
	var (
		listen   = flag.String("listen", "127.0.0.1:4420", "listen address")
		admin    = flag.String("admin", "127.0.0.1:9420", "observability endpoint address (empty disables)")
		ssds     = flag.Int("ssds", 4, "number of simulated SSDs")
		scheme   = flag.String("scheme", "gimbal", "scheduler: gimbal|vanilla|reflex|flashfq|parda")
		cond     = flag.String("cond", "clean", "precondition: fresh|clean|fragmented")
		capacity = flag.Int64("capacity", 2<<30, "per-SSD usable bytes")
		traceCap = flag.Int("trace", 8192, "per-IO trace ring capacity (0 disables tracing)")
		drain    = flag.Duration("drain", 3*time.Second, "graceful shutdown drain timeout")
	)
	flag.Parse()

	sch, err := fabric.ParseScheme(*scheme)
	if err != nil {
		log.Fatal(err)
	}
	var condition ssd.Condition
	switch *cond {
	case "fresh":
		condition = ssd.Fresh
	case "clean":
		condition = ssd.Clean
	case "fragmented":
		condition = ssd.Fragmented
	default:
		log.Fatalf("unknown condition %q", *cond)
	}

	rs := sim.NewRealScheduler()
	rng := sim.NewRNG(uint64(os.Getpid()))
	var devs []ssd.Device
	for i := 0; i < *ssds; i++ {
		p := ssd.DCT983()
		p.UsableBytes = *capacity
		d := ssd.New(rs, p)
		log.Printf("preconditioning ssd %d (%s, %s)...", i, p.Name, condition)
		d.Precondition(condition, rng.Fork())
		devs = append(devs, d)
	}
	target := fabric.NewTarget(rs, devs, fabric.DefaultTargetConfig(sch))

	// Telemetry: registry gathered under the scheduler lock, plus the
	// per-IO lifecycle trace ring.
	reg := obs.NewRegistry()
	reg.GatherLock = rs
	var ring *obs.TraceRing
	if *traceCap > 0 {
		ring = obs.NewTraceRing(*traceCap)
	}
	rs.Lock()
	target.AttachObs(reg, ring)
	rs.Unlock()

	srv, err := fabric.ServeTCP(rs, target, *listen)
	if err != nil {
		log.Fatal(err)
	}
	srv.AttachObs(reg)

	var adminSrv *http.Server
	if *admin != "" {
		mux := fabric.AdminMux(rs, target, reg, ring)
		mux.HandleFunc("/debug/pprof/", pprof.Index)
		mux.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
		mux.HandleFunc("/debug/pprof/profile", pprof.Profile)
		mux.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
		mux.HandleFunc("/debug/pprof/trace", pprof.Trace)
		adminSrv = &http.Server{Addr: *admin, Handler: mux}
		go func() {
			if err := adminSrv.ListenAndServe(); err != nil && err != http.ErrServerClosed {
				log.Printf("admin endpoint: %v", err)
			}
		}()
	}

	fmt.Printf("gimbald: %d x %s SSDs (%s) behind %q scheme, listening on %s\n",
		*ssds, condition, byteSize(*capacity), sch, srv.Addr())
	if *admin != "" {
		fmt.Printf("gimbald: observability on http://%s (/metrics /stats /trace /debug/pprof)\n", *admin)
	}

	sig := make(chan os.Signal, 1)
	signal.Notify(sig, os.Interrupt, syscall.SIGTERM)
	<-sig
	log.Printf("shutting down: draining in-flight IO (up to %s)", *drain)
	if adminSrv != nil {
		ctx, cancel := context.WithTimeout(context.Background(), time.Second)
		_ = adminSrv.Shutdown(ctx)
		cancel()
	}
	if err := srv.Shutdown(*drain); err != nil {
		log.Printf("listener close: %v", err)
	}

	// Final telemetry snapshot so a scrape gap around shutdown loses
	// nothing: per-tenant totals and the registry, one JSON line each.
	rs.Lock()
	stats := target.StatsSnapshot()
	rs.Unlock()
	if b, err := json.Marshal(stats); err == nil {
		log.Printf("final stats: %s", b)
	}
	if b, err := json.Marshal(reg.Snapshot()); err == nil {
		log.Printf("final metrics: %s", b)
	}
	if ring != nil {
		log.Printf("traced %d IOs (last %d retained)", ring.Total(), ring.Len())
	}
	log.Println("shutdown complete")
}

func byteSize(n int64) string {
	switch {
	case n >= 1<<30:
		return fmt.Sprintf("%dGiB", n>>30)
	case n >= 1<<20:
		return fmt.Sprintf("%dMiB", n>>20)
	default:
		return fmt.Sprintf("%dB", n)
	}
}
