// Command gimbald is a live NVMe-oF-style storage target over TCP: a
// simulated JBOF (wall-clock SSD models) fronted by the Gimbal storage
// switch — or any of the baseline schemes — serving the capsule protocol
// of internal/fabric on a listening socket.
//
//	gimbald -listen 127.0.0.1:4420 -ssds 4 -scheme gimbal -cond fragmented
//
// The live datapath is sharded into per-SSD reactors by default: -reactors
// picks the shard count (-1 = min(GOMAXPROCS, ssds); 0 = the legacy
// single-lock datapath), and SSD i runs on shard i%R. See DESIGN.md §4.1
// "live reactor datapath".
//
// A second listener (-admin, default 127.0.0.1:9420) serves the
// observability endpoint:
//
//	/metrics        Prometheus text format (control loop, SSD, fabric)
//	/stats          JSON snapshot: per-tenant bandwidth, credits, write cost
//	/trace          captured per-IO lifecycle spans, JSONL; filter with
//	                ?tenant= ?phase= ?n=
//	/slo            per-tenant SLO attainment, burn rates, correlated events
//	/reactors       shard → SSD mapping and per-reactor capsule counts
//	/debug/pprof/   the standard Go profiler
//
// Span capture policy is -trace-mode: "sampled" (default) captures every
// IO slower than -trace-slow plus every -trace-nth IO; "full" captures all.
// The SLO engine is armed with -slo-target/-slo-goal.
//
// Drive it with cmd/gimbalcli; `gimbalcli stats` renders /stats and
// `gimbalcli top` joins /stats with /slo in a live view.
//
// A scripted SSD fault schedule can be armed at startup with -faults; see
// loadFaultPlan for the JSON shape. -recovery (default on) enables the
// Gimbal switch's fail-fast latch and graceful degradation so the target
// survives the injected faults the way §3.7 describes.
package main

import (
	"context"
	"encoding/json"
	"flag"
	"fmt"
	"log"
	"net/http"
	"net/http/pprof"
	"os"
	"os/signal"
	"runtime"
	"strconv"
	"strings"
	"syscall"
	"time"

	"gimbal/internal/core"
	"gimbal/internal/fabric"
	"gimbal/internal/fault"
	"gimbal/internal/obs"
	"gimbal/internal/sim"
	"gimbal/internal/ssd"
	"gimbal/internal/tier"
	"gimbal/internal/volume"
)

func main() {
	var (
		listen    = flag.String("listen", "127.0.0.1:4420", "listen address")
		admin     = flag.String("admin", "127.0.0.1:9420", "observability endpoint address (empty disables)")
		ssds      = flag.Int("ssds", 4, "number of simulated SSDs")
		reactors  = flag.Int("reactors", -1, "per-SSD reactor shards: -1 auto (min(GOMAXPROCS, ssds)), 0 legacy single-lock datapath, N explicit")
		scheme    = flag.String("scheme", "gimbal", "scheduler: gimbal|vanilla|reflex|flashfq|parda")
		cond      = flag.String("cond", "clean", "precondition: fresh|clean|fragmented")
		capacity  = flag.Int64("capacity", 2<<30, "per-SSD usable bytes")
		traceCap  = flag.Int("trace", 8192, "per-IO trace ring capacity (0 disables tracing)")
		traceMode = flag.String("trace-mode", "sampled", "span capture policy: off|sampled|full (sampled = every slow IO + 1/N of the rest)")
		traceSlow = flag.Duration("trace-slow", time.Millisecond, "sampled mode: always capture IOs at least this slow")
		traceNth  = flag.Int("trace-nth", 64, "sampled mode: capture every Nth IO regardless of latency")
		sloTarget = flag.Duration("slo-target", 0, "per-tenant latency objective (0 disables the SLO engine)")
		sloGoal   = flag.Float64("slo-goal", 0.999, "fraction of IOs that must meet the latency objective")
		drain     = flag.Duration("drain", 3*time.Second, "graceful shutdown drain timeout")
		faults    = flag.String("faults", "", "JSON fault plan armed at startup (SSD faults only)")
		recovery  = flag.Bool("recovery", true, "enable fail-fast + graceful degradation on the gimbal scheme")
		classW    = flag.String("class-weights", "", "comma-separated QoS class weights for the gimbal scheduler (e.g. 4,2,1); empty = flat single-class DRR")
		qosFlag   = flag.String("qos-classes", "", "named QoS classes for the volume control plane and scheduler (e.g. gold=8,silver=4,besteffort=1); supersedes -class-weights")
		eager     = flag.Bool("eager-redistribute", false, "use the O(tenants) eager vslot redistribution loop instead of the lazy epoch-stamped path (debugging/differential runs)")
		tierFlag  = flag.String("tier", "", "fast-tier cache per SSD: a fraction of -capacity (e.g. 0.1) or a byte size (e.g. 256MiB); empty disables")
		token     = flag.String("admin-token", "", "bearer token required on mutating volume endpoints (empty leaves them open)")
	)
	flag.Parse()

	sch, err := fabric.ParseScheme(*scheme)
	if err != nil {
		log.Fatal(err)
	}
	tcfg := fabric.DefaultTargetConfig(sch)
	// -qos-classes is the one-stop policy knob: it names the volume QoS
	// menu AND compiles the scheduler's class weights. The raw
	// -class-weights flag remains for weight-only runs without the volume
	// layer's class names.
	classes := volume.DefaultClasses()
	if *qosFlag != "" {
		if *classW != "" {
			log.Fatalf("-qos-classes and -class-weights are mutually exclusive")
		}
		cs, err := volume.ParseClasses(*qosFlag)
		if err != nil {
			log.Fatalf("-qos-classes: %v", err)
		}
		classes = cs
		tcfg.Gimbal.Sched.ClassWeights = cs.Compile().ClassWeights
	} else if *classW != "" {
		weights, err := parseClassWeights(*classW)
		if err != nil {
			log.Fatalf("-class-weights: %v", err)
		}
		tcfg.Gimbal.Sched.ClassWeights = weights
	}
	tcfg.Gimbal.Sched.EagerRedistribute = *eager
	var condition ssd.Condition
	switch *cond {
	case "fresh":
		condition = ssd.Fresh
	case "clean":
		condition = ssd.Clean
	case "fragmented":
		condition = ssd.Fragmented
	default:
		log.Fatalf("unknown condition %q", *cond)
	}

	// Datapath layout: R == 0 keeps the legacy single-lock RealScheduler;
	// R >= 1 shards the target into per-SSD reactors (SSD i on shard i%R)
	// with the lock-free ring datapath of internal/fabric/reactor.go.
	R := *reactors
	if R < 0 {
		R = runtime.GOMAXPROCS(0)
	}
	if R > *ssds {
		R = *ssds
	}
	var (
		rs     *sim.RealScheduler
		shards *sim.RealShards
		lc     fabric.LockedClock
	)
	if R == 0 {
		rs = sim.NewRealScheduler()
		lc = rs
	} else {
		shards = sim.NewRealShards(R)
		lc = shards
	}
	clkFor := func(i int) sim.Scheduler {
		if R == 0 {
			return rs
		}
		return shards.Shard(i % R)
	}
	var tierParams tier.Params
	if *tierFlag != "" {
		tierBytes, err := parseTierSize(*tierFlag, *capacity)
		if err != nil {
			log.Fatalf("-tier: %v", err)
		}
		tierParams = tier.DefaultParams(tierBytes)
		if err := tierParams.Validate(); err != nil {
			log.Fatalf("-tier: %v", err)
		}
	}
	rng := sim.NewRNG(uint64(os.Getpid()))
	var devs []ssd.Device
	var ssdModels []*ssd.SSD
	var wraps []*fault.Device
	var tiers []*tier.Device
	for i := 0; i < *ssds; i++ {
		p := ssd.DCT983()
		p.UsableBytes = *capacity
		d := ssd.New(clkFor(i), p)
		if *tierFlag != "" {
			// Tag before preconditioning: tiered and untiered stacks must
			// not share an FTL snapshot cache entry.
			d.SetSnapshotTag(tierParams.SnapshotTag())
		}
		log.Printf("preconditioning ssd %d (%s, %s)...", i, p.Name, condition)
		d.Precondition(condition, rng.Fork())
		w := fault.Wrap(clkFor(i), d)
		var dev ssd.Device = w
		if *tierFlag != "" {
			// Tier outermost, above the fault layer, so NAND faults never
			// slow tier hits.
			ft := tier.New(clkFor(i), w, tierParams)
			tiers = append(tiers, ft)
			dev = ft
		}
		devs = append(devs, dev)
		ssdModels = append(ssdModels, d)
		wraps = append(wraps, w)
	}
	var target *fabric.Target
	if R == 0 {
		target = fabric.NewTarget(rs, devs, tcfg)
	} else {
		target = fabric.NewReactorTarget(shards, devs, tcfg)
	}
	if *recovery && sch == fabric.SchemeGimbal {
		for i := 0; i < *ssds; i++ {
			if g := target.Pipeline(i).Gimbal; g != nil {
				g.EnableRecovery(core.DefaultRecoveryConfig())
			}
		}
	}
	for i, ft := range tiers {
		if g := target.Pipeline(i).Gimbal; g != nil {
			g.SetCostModel(ft)
		}
	}
	// Telemetry: registry gathered under the scheduler lock, the span
	// tracer, the per-tenant SLO engine, and the shared event log the
	// fault engine and the switch's recovery transitions both feed.
	mode, err := obs.ParseTraceMode(*traceMode)
	if err != nil {
		log.Fatal(err)
	}
	// In legacy mode the one registry holds every pipeline's instruments
	// and gathers under the one scheduler lock. In reactor mode the hub
	// registry keeps only atomic transport gauges (no GatherLock needed)
	// and each reactor gets its own shard registry gathered under that
	// shard's lock; /metrics joins them through an obs.Group, so a scrape
	// serializes with at most one reactor at a time.
	reg := obs.NewRegistry()
	var shardRegs []*obs.Registry
	var mw fabric.MetricsWriter = reg
	var group *obs.Group
	if R == 0 {
		reg.GatherLock = rs
	} else {
		shardRegs = make([]*obs.Registry, R)
		members := []*obs.Registry{reg}
		for j := 0; j < R; j++ {
			shardRegs[j] = obs.NewRegistry()
			shardRegs[j].GatherLock = shards.Shard(j)
			members = append(members, shardRegs[j])
		}
		group = obs.NewGroup(members...)
		mw = group
	}
	hub := obs.NewHub(reg)
	if *traceCap > 0 && mode != obs.TraceOff {
		hub.Tracer = obs.NewTracer(obs.TracerConfig{
			Capacity:    *traceCap,
			Mode:        mode,
			SlowNs:      int64(*traceSlow),
			SampleEvery: *traceNth,
		})
	}
	hub.Events = obs.NewEventLog(1024)
	if *sloTarget > 0 {
		hub.SLO = obs.NewSLOEngine(obs.SLOConfig{
			Default: obs.SLO{LatencyTargetNs: int64(*sloTarget), LatencyGoal: *sloGoal},
		})
		hub.SLO.SetEventLog(hub.Events)
	}

	if *faults != "" {
		plan, err := loadFaultPlan(*faults)
		if err != nil {
			log.Fatalf("fault plan: %v", err)
		}
		// An engine schedules injections on one scheduler, and a device may
		// only be mutated from its own shard's context — so the plan is
		// partitioned per shard (event for SSD i → engine on shard i%R).
		// Legacy mode degenerates to one engine with the whole plan.
		engines := 1
		if R > 0 {
			engines = R
		}
		armed := 0
		for j := 0; j < engines; j++ {
			clk := clkFor(j)
			sub := &fault.Plan{Seed: plan.Seed}
			for _, ev := range plan.Events {
				if R == 0 || ev.SSD%R == j {
					sub.Events = append(sub.Events, ev)
				}
			}
			if len(sub.Events) == 0 {
				continue
			}
			eng := fault.NewEngine(clk, wraps)
			eng.Stall = func(ssdIdx, die int, dur int64) error {
				return ssdModels[ssdIdx].InjectDieStall(die, dur)
			}
			if len(tiers) > 0 {
				eng.Tier = func(ssdIdx int, active bool) { tiers[ssdIdx].SetBypass(active) }
			}
			eng.OnEvent = func(ev fault.Event, active bool) {
				hub.Events.Append(lc.Now(), ev.Kind.String(), fmt.Sprintf("ssd=%d", ev.SSD), active)
			}
			if err := eng.Arm(sub); err != nil {
				log.Fatalf("fault plan: %v", err)
			}
			armed += eng.Armed
		}
		log.Printf("armed %d fault events from %s", armed, *faults)
	}

	lc.Lock()
	if R == 0 {
		target.AttachObs(hub)
	} else {
		pregs := make([]*obs.Registry, *ssds)
		for i := range pregs {
			pregs[i] = shardRegs[i%R]
		}
		target.AttachObsSharded(hub, pregs)
	}
	lc.Unlock()
	ring := hub.Ring()

	var srv interface {
		Addr() string
		Shutdown(timeout time.Duration) error
	}
	var rsrv *fabric.TCPReactors
	if R == 0 {
		s, err := fabric.ServeTCP(rs, target, *listen)
		if err != nil {
			log.Fatal(err)
		}
		s.AttachObs(reg)
		srv = s
	} else {
		s, err := fabric.ServeTCPReactors(shards, target, *listen)
		if err != nil {
			log.Fatal(err)
		}
		s.AttachObs(hub, shardRegs)
		srv = s
		rsrv = s
	}

	var adminSrv *http.Server
	var vols *volumeServer
	if *admin != "" {
		mux := fabric.AdminMuxMetrics(lc, target, hub, mw)
		vols = newVolumeServer(classes, *ssds, *capacity, *token)
		vols.register(mux)
		if rsrv != nil {
			mux.HandleFunc("/reactors", func(w http.ResponseWriter, r *http.Request) {
				w.Header().Set("Content-Type", "application/json")
				enc := json.NewEncoder(w)
				enc.SetIndent("", "  ")
				_ = enc.Encode(rsrv.ReactorStats())
			})
		}
		mux.HandleFunc("/debug/pprof/", pprof.Index)
		mux.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
		mux.HandleFunc("/debug/pprof/profile", pprof.Profile)
		mux.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
		mux.HandleFunc("/debug/pprof/trace", pprof.Trace)
		adminSrv = &http.Server{Addr: *admin, Handler: mux}
		go func() {
			if err := adminSrv.ListenAndServe(); err != nil && err != http.ErrServerClosed {
				log.Printf("admin endpoint: %v", err)
			}
		}()
	}

	if R == 0 {
		fmt.Printf("gimbald: %d x %s SSDs (%s) behind %q scheme, listening on %s (single-lock datapath)\n",
			*ssds, condition, byteSize(*capacity), sch, srv.Addr())
	} else {
		fmt.Printf("gimbald: %d x %s SSDs (%s) behind %q scheme, listening on %s (%d reactor shards)\n",
			*ssds, condition, byteSize(*capacity), sch, srv.Addr(), R)
	}
	if *admin != "" {
		fmt.Printf("gimbald: observability on http://%s (/metrics /stats /trace /slo /volumes /snapshots /debug/pprof)\n", *admin)
	}

	sig := make(chan os.Signal, 1)
	signal.Notify(sig, os.Interrupt, syscall.SIGTERM)
	<-sig
	log.Printf("shutting down: draining in-flight IO (up to %s)", *drain)
	// Provisioning closes first: in-flight IO may still drain, but no new
	// volumes appear on a daemon that is going away.
	if vols != nil {
		vols.Drain()
	}
	if adminSrv != nil {
		ctx, cancel := context.WithTimeout(context.Background(), time.Second)
		_ = adminSrv.Shutdown(ctx)
		cancel()
	}
	if err := srv.Shutdown(*drain); err != nil {
		log.Printf("listener close: %v", err)
	}

	// Final telemetry snapshot so a scrape gap around shutdown loses
	// nothing: per-tenant totals and the registry, one JSON line each.
	lc.Lock()
	stats := target.StatsSnapshot()
	lc.Unlock()
	if b, err := json.Marshal(stats); err == nil {
		log.Printf("final stats: %s", b)
	}
	snap := reg.Snapshot()
	if group != nil {
		snap = group.Snapshot()
	}
	if b, err := json.Marshal(snap); err == nil {
		log.Printf("final metrics: %s", b)
	}
	if ring != nil {
		log.Printf("traced %d IOs (last %d retained)", ring.Total(), ring.Len())
	}
	log.Println("shutdown complete")
}

// loadFaultPlan parses a JSON fault schedule:
//
//	{"events": [
//	  {"kind": "ssd-brownout",      "at": "10s", "dur": "30s", "ssd": 0, "factor": 8},
//	  {"kind": "ssd-latency-spike", "at": "1m",  "dur": "10s", "ssd": 1, "extra": "2ms"},
//	  {"kind": "ssd-die-stall",     "at": "2m",  "dur": "5s",  "ssd": 0, "die": 3},
//	  {"kind": "ssd-fail",          "at": "3m",  "dur": "20s", "ssd": 2}
//	]}
//
// Times are relative to process start. Fabric fault kinds are rejected:
// live sessions appear dynamically with TCP connections, so they cannot be
// addressed by index from a startup file. Use the simulation API
// (gimbal.FaultPlan) or gimbalbench's chaos experiments for those.
func loadFaultPlan(path string) (*fault.Plan, error) {
	var doc struct {
		Seed   uint64 `json:"seed"`
		Events []struct {
			Kind   string  `json:"kind"`
			At     string  `json:"at"`
			Dur    string  `json:"dur"`
			SSD    int     `json:"ssd"`
			Die    int     `json:"die"`
			Factor float64 `json:"factor"`
			Extra  string  `json:"extra"`
			Prob   float64 `json:"prob"`
		} `json:"events"`
	}
	b, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	if err := json.Unmarshal(b, &doc); err != nil {
		return nil, err
	}
	kinds := map[string]fault.Kind{
		"ssd-latency-spike": fault.SSDLatencySpike,
		"ssd-brownout":      fault.SSDBrownout,
		"ssd-die-stall":     fault.SSDDieStall,
		"ssd-fail":          fault.SSDFail,
		"ssd-tier-bypass":   fault.SSDTierBypass,
	}
	dur := func(s string) (int64, error) {
		if s == "" {
			return 0, nil
		}
		d, err := time.ParseDuration(s)
		return int64(d), err
	}
	plan := &fault.Plan{Seed: doc.Seed}
	for i, ev := range doc.Events {
		k, ok := kinds[ev.Kind]
		if !ok {
			return nil, fmt.Errorf("event %d: unsupported kind %q (SSD faults only)", i, ev.Kind)
		}
		at, err := dur(ev.At)
		if err != nil {
			return nil, fmt.Errorf("event %d: at: %v", i, err)
		}
		window, err := dur(ev.Dur)
		if err != nil {
			return nil, fmt.Errorf("event %d: dur: %v", i, err)
		}
		extra, err := dur(ev.Extra)
		if err != nil {
			return nil, fmt.Errorf("event %d: extra: %v", i, err)
		}
		plan.Events = append(plan.Events, fault.Event{
			Kind: k, At: at, Dur: window, SSD: ev.SSD, Die: ev.Die,
			Factor: ev.Factor, Extra: extra, Prob: ev.Prob,
		})
	}
	return plan, nil
}

// parseTierSize parses the -tier flag: a fraction of the per-SSD capacity
// ("0.1"), or an absolute byte size — a plain integer ("268435456") or a
// KiB/MiB/GiB-suffixed size ("256MiB").
func parseTierSize(s string, capacity int64) (int64, error) {
	mult := int64(1)
	num := s
	switch {
	case strings.HasSuffix(s, "GiB"):
		mult, num = 1<<30, strings.TrimSuffix(s, "GiB")
	case strings.HasSuffix(s, "MiB"):
		mult, num = 1<<20, strings.TrimSuffix(s, "MiB")
	case strings.HasSuffix(s, "KiB"):
		mult, num = 1<<10, strings.TrimSuffix(s, "KiB")
	}
	if mult > 1 {
		n, err := strconv.ParseInt(strings.TrimSpace(num), 10, 64)
		if err != nil || n <= 0 {
			return 0, fmt.Errorf("bad size %q", s)
		}
		return n * mult, nil
	}
	f, err := strconv.ParseFloat(s, 64)
	if err != nil || f <= 0 {
		return 0, fmt.Errorf("bad size or fraction %q", s)
	}
	if f < 1 {
		return int64(f * float64(capacity)), nil
	}
	return int64(f), nil
}

// parseClassWeights parses "-class-weights 4,2,1" into the scheduler's
// QoS class weight vector.
func parseClassWeights(s string) ([]int, error) {
	parts := strings.Split(s, ",")
	weights := make([]int, 0, len(parts))
	for _, p := range parts {
		w, err := strconv.Atoi(strings.TrimSpace(p))
		if err != nil {
			return nil, fmt.Errorf("weight %q: %v", p, err)
		}
		if w < 1 {
			return nil, fmt.Errorf("weight %d: must be >= 1", w)
		}
		weights = append(weights, w)
	}
	return weights, nil
}

func byteSize(n int64) string {
	switch {
	case n >= 1<<30:
		return fmt.Sprintf("%dGiB", n>>30)
	case n >= 1<<20:
		return fmt.Sprintf("%dMiB", n>>20)
	default:
		return fmt.Sprintf("%dB", n)
	}
}
