// Command gimbald is a live NVMe-oF-style storage target over TCP: a
// simulated JBOF (wall-clock SSD models) fronted by the Gimbal storage
// switch — or any of the baseline schemes — serving the capsule protocol
// of internal/fabric on a listening socket.
//
//	gimbald -listen 127.0.0.1:4420 -ssds 4 -scheme gimbal -cond fragmented
//
// Drive it with cmd/gimbalcli.
package main

import (
	"flag"
	"fmt"
	"log"
	"os"
	"os/signal"
	"syscall"

	"gimbal/internal/fabric"
	"gimbal/internal/sim"
	"gimbal/internal/ssd"
)

func main() {
	var (
		listen   = flag.String("listen", "127.0.0.1:4420", "listen address")
		ssds     = flag.Int("ssds", 4, "number of simulated SSDs")
		scheme   = flag.String("scheme", "gimbal", "scheduler: gimbal|vanilla|reflex|flashfq|parda")
		cond     = flag.String("cond", "clean", "precondition: fresh|clean|fragmented")
		capacity = flag.Int64("capacity", 2<<30, "per-SSD usable bytes")
	)
	flag.Parse()

	sch, err := fabric.ParseScheme(*scheme)
	if err != nil {
		log.Fatal(err)
	}
	var condition ssd.Condition
	switch *cond {
	case "fresh":
		condition = ssd.Fresh
	case "clean":
		condition = ssd.Clean
	case "fragmented":
		condition = ssd.Fragmented
	default:
		log.Fatalf("unknown condition %q", *cond)
	}

	rs := sim.NewRealScheduler()
	rng := sim.NewRNG(uint64(os.Getpid()))
	var devs []ssd.Device
	for i := 0; i < *ssds; i++ {
		p := ssd.DCT983()
		p.UsableBytes = *capacity
		d := ssd.New(rs, p)
		log.Printf("preconditioning ssd %d (%s, %s)...", i, p.Name, condition)
		d.Precondition(condition, rng.Fork())
		devs = append(devs, d)
	}
	target := fabric.NewTarget(rs, devs, fabric.DefaultTargetConfig(sch))
	srv, err := fabric.ServeTCP(rs, target, *listen)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("gimbald: %d x %s SSDs (%s) behind %q scheme, listening on %s\n",
		*ssds, condition, byteSize(*capacity), sch, srv.Addr())

	sig := make(chan os.Signal, 1)
	signal.Notify(sig, os.Interrupt, syscall.SIGTERM)
	<-sig
	log.Println("shutting down")
	srv.Close()
}

func byteSize(n int64) string {
	switch {
	case n >= 1<<30:
		return fmt.Sprintf("%dGiB", n>>30)
	case n >= 1<<20:
		return fmt.Sprintf("%dMiB", n>>20)
	default:
		return fmt.Sprintf("%dB", n)
	}
}
