package main

import (
	"bytes"
	"encoding/json"
	"net/http"
	"net/http/httptest"
	"testing"

	"gimbal/internal/volume"
)

func newTestVolumeAPI(t *testing.T) (*volumeServer, *httptest.Server) {
	return newTestVolumeAPIToken(t, "")
}

func newTestVolumeAPIToken(t *testing.T, token string) (*volumeServer, *httptest.Server) {
	t.Helper()
	classes, err := volume.ParseClasses("gold=8,silver=4,besteffort=1")
	if err != nil {
		t.Fatal(err)
	}
	vs := newVolumeServer(classes, 2, 1<<30, token)
	mux := http.NewServeMux()
	vs.register(mux)
	srv := httptest.NewServer(mux)
	t.Cleanup(srv.Close)
	return vs, srv
}

func doJSON(t *testing.T, method, url string, body any, out any) int {
	t.Helper()
	var buf bytes.Buffer
	if body != nil {
		if err := json.NewEncoder(&buf).Encode(body); err != nil {
			t.Fatal(err)
		}
	}
	req, err := http.NewRequest(method, url, &buf)
	if err != nil {
		t.Fatal(err)
	}
	rsp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	defer rsp.Body.Close()
	if out != nil && rsp.StatusCode < 300 && rsp.StatusCode != http.StatusNoContent {
		if err := json.NewDecoder(rsp.Body).Decode(out); err != nil {
			t.Fatal(err)
		}
	}
	return rsp.StatusCode
}

// TestVolumeEndpoints drives the full CSI-shaped lifecycle over HTTP:
// create, snapshot, clone, conflict and capacity errors, delete ordering,
// and the status-code mapping for each sentinel.
func TestVolumeEndpoints(t *testing.T) {
	_, srv := newTestVolumeAPI(t)
	base := srv.URL

	var v volumeInfo
	if got := doJSON(t, "POST", base+"/volumes", createVolumeReq{Name: "v0", SizeBytes: 64 << 20, QoSClass: "gold"}, &v); got != http.StatusCreated {
		t.Fatalf("create: %d", got)
	}
	if v.Name != "v0" || v.QoSClass != "gold" {
		t.Fatalf("create reply: %+v", v)
	}
	// Duplicate name and unknown class are client errors.
	if got := doJSON(t, "POST", base+"/volumes", createVolumeReq{Name: "v0", SizeBytes: 1 << 20}, nil); got != http.StatusConflict {
		t.Fatalf("duplicate create: %d, want 409", got)
	}
	if got := doJSON(t, "POST", base+"/volumes", createVolumeReq{Name: "v1", SizeBytes: 1 << 20, QoSClass: "platinum"}, nil); got != http.StatusBadRequest {
		t.Fatalf("unknown class: %d, want 400", got)
	}
	// Past the 4× thin budget on 2 × 1GB backends.
	if got := doJSON(t, "POST", base+"/volumes", createVolumeReq{Name: "big", SizeBytes: 10 << 30}, nil); got != http.StatusInsufficientStorage {
		t.Fatalf("over capacity: %d, want 507", got)
	}

	var s snapshotInfo
	if got := doJSON(t, "POST", base+"/volumes/v0/snapshots", snapshotReq{Name: "s0"}, &s); got != http.StatusCreated {
		t.Fatalf("snapshot: %d", got)
	}
	var c volumeInfo
	if got := doJSON(t, "POST", base+"/snapshots/s0/clones", cloneReq{Name: "c0", QoSClass: "silver"}, &c); got != http.StatusCreated {
		t.Fatalf("clone: %d", got)
	}
	if c.Parent != "s0" || c.QoSClass != "silver" {
		t.Fatalf("clone reply: %+v", c)
	}
	// A snapshot with live clones cannot be deleted.
	if got := doJSON(t, "DELETE", base+"/snapshots/s0", nil, nil); got != http.StatusConflict {
		t.Fatalf("delete pinned snapshot: %d, want 409", got)
	}
	if got := doJSON(t, "POST", base+"/volumes/v0/resize", resizeReq{SizeBytes: 128 << 20}, &v); got != http.StatusOK || v.SizeBytes != 128<<20 {
		t.Fatalf("resize: %d %+v", got, v)
	}

	var listing struct {
		Usage   volume.Usage `json:"usage"`
		Volumes []volumeInfo `json:"volumes"`
	}
	if got := doJSON(t, "GET", base+"/volumes", nil, &listing); got != http.StatusOK {
		t.Fatalf("list: %d", got)
	}
	if len(listing.Volumes) != 2 || listing.Usage.Volumes != 2 || listing.Usage.Snapshots != 1 {
		t.Fatalf("listing: %+v", listing)
	}
	if listing.Usage.LogicalBytes != (128<<20)+(64<<20) {
		t.Fatalf("logical bytes: %d", listing.Usage.LogicalBytes)
	}

	// Teardown in dependency order; 404 after.
	if got := doJSON(t, "DELETE", base+"/volumes/c0", nil, nil); got != http.StatusNoContent {
		t.Fatalf("delete clone: %d", got)
	}
	if got := doJSON(t, "DELETE", base+"/snapshots/s0", nil, nil); got != http.StatusNoContent {
		t.Fatalf("delete snapshot: %d", got)
	}
	if got := doJSON(t, "DELETE", base+"/volumes/v0", nil, nil); got != http.StatusNoContent {
		t.Fatalf("delete volume: %d", got)
	}
	if got := doJSON(t, "GET", base+"/volumes/v0", nil, nil); got != http.StatusNotFound {
		t.Fatalf("lookup deleted: %d, want 404", got)
	}

	var classes []struct {
		Name   string `json:"name"`
		Weight int    `json:"weight"`
	}
	if got := doJSON(t, "GET", base+"/qos-classes", nil, &classes); got != http.StatusOK {
		t.Fatalf("qos-classes: %d", got)
	}
	if len(classes) != 3 || classes[0].Name != "gold" || classes[0].Weight != 8 {
		t.Fatalf("classes: %+v", classes)
	}
}

// doJSONAuth is doJSON with an Authorization header.
func doJSONAuth(t *testing.T, method, url, auth string, body any, out any) int {
	t.Helper()
	var buf bytes.Buffer
	if body != nil {
		if err := json.NewEncoder(&buf).Encode(body); err != nil {
			t.Fatal(err)
		}
	}
	req, err := http.NewRequest(method, url, &buf)
	if err != nil {
		t.Fatal(err)
	}
	if auth != "" {
		req.Header.Set("Authorization", auth)
	}
	rsp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	defer rsp.Body.Close()
	if out != nil && rsp.StatusCode < 300 && rsp.StatusCode != http.StatusNoContent {
		if err := json.NewDecoder(rsp.Body).Decode(out); err != nil {
			t.Fatal(err)
		}
	}
	return rsp.StatusCode
}

// TestVolumeAuth pins the -admin-token contract: with a token configured,
// every mutating endpoint rejects missing or wrong credentials with 401,
// accepts the right bearer token, and leaves reads open.
func TestVolumeAuth(t *testing.T) {
	_, srv := newTestVolumeAPIToken(t, "s3cret")
	base := srv.URL

	mutations := []struct {
		method, path string
	}{
		{"POST", "/volumes"},
		{"DELETE", "/volumes/v0"},
		{"POST", "/volumes/v0/resize"},
		{"POST", "/volumes/v0/snapshots"},
		{"DELETE", "/snapshots/s0"},
		{"POST", "/snapshots/s0/clones"},
	}
	for _, m := range mutations {
		if got := doJSON(t, m.method, base+m.path, map[string]any{}, nil); got != http.StatusUnauthorized {
			t.Errorf("%s %s without token: %d, want 401", m.method, m.path, got)
		}
		if got := doJSONAuth(t, m.method, base+m.path, "Bearer wrong", map[string]any{}, nil); got != http.StatusUnauthorized {
			t.Errorf("%s %s with wrong token: %d, want 401", m.method, m.path, got)
		}
		if got := doJSONAuth(t, m.method, base+m.path, "s3cret", map[string]any{}, nil); got != http.StatusUnauthorized {
			t.Errorf("%s %s with non-bearer scheme: %d, want 401", m.method, m.path, got)
		}
	}

	// The right token works end to end.
	var v volumeInfo
	if got := doJSONAuth(t, "POST", base+"/volumes", "Bearer s3cret",
		createVolumeReq{Name: "v0", SizeBytes: 1 << 20, QoSClass: "gold"}, &v); got != http.StatusCreated {
		t.Fatalf("authorized create: %d, want 201", got)
	}
	// Reads stay open without credentials.
	var listing struct {
		Volumes []volumeInfo `json:"volumes"`
	}
	if got := doJSON(t, "GET", base+"/volumes", nil, &listing); got != http.StatusOK || len(listing.Volumes) != 1 {
		t.Fatalf("unauthenticated read: %d %+v", got, listing)
	}
	if got := doJSON(t, "GET", base+"/qos-classes", nil, nil); got != http.StatusOK {
		t.Fatalf("unauthenticated classes read: %d", got)
	}
	if got := doJSONAuth(t, "DELETE", base+"/volumes/v0", "Bearer s3cret", nil, nil); got != http.StatusNoContent {
		t.Fatalf("authorized delete: %d", got)
	}
}

// TestVolumeDrain pins the graceful-drain contract: after Drain, every
// mutation returns 503 while reads keep serving.
func TestVolumeDrain(t *testing.T) {
	vs, srv := newTestVolumeAPI(t)
	base := srv.URL
	if got := doJSON(t, "POST", base+"/volumes", createVolumeReq{Name: "v0", SizeBytes: 1 << 20}, nil); got != http.StatusCreated {
		t.Fatalf("create before drain: %d", got)
	}
	vs.Drain()
	for _, m := range []struct{ method, path string }{
		{"POST", "/volumes"},
		{"DELETE", "/volumes/v0"},
		{"POST", "/volumes/v0/resize"},
		{"POST", "/volumes/v0/snapshots"},
		{"POST", "/snapshots/s0/clones"},
	} {
		if got := doJSON(t, m.method, base+m.path, map[string]any{}, nil); got != http.StatusServiceUnavailable {
			t.Errorf("%s %s while draining: %d, want 503", m.method, m.path, got)
		}
	}
	var listing struct {
		Volumes []volumeInfo `json:"volumes"`
	}
	if got := doJSON(t, "GET", base+"/volumes", nil, &listing); got != http.StatusOK || len(listing.Volumes) != 1 {
		t.Fatalf("read while draining: %d %+v", got, listing)
	}
}
