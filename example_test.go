package gimbal_test

import (
	"fmt"
	"time"

	"gimbal"
)

// Example mirrors the package-doc quickstart: a reader and a writer share
// one fragmented SSD behind the Gimbal switch, and both make progress.
func Example() {
	s := gimbal.NewSim(42)
	jbof, err := s.NewJBOF(
		gimbal.WithScheme(gimbal.SchemeGimbal),
		gimbal.WithCondition(gimbal.Fragmented),
		gimbal.WithCapacity(1<<30),
	)
	if err != nil {
		panic(err)
	}
	reader, err := jbof.StartWorkload(0, gimbal.WithReadFraction(1),
		gimbal.WithIOSize(4096), gimbal.WithQueueDepth(32))
	if err != nil {
		panic(err)
	}
	writer, err := jbof.StartWorkload(0, gimbal.WithReadFraction(0),
		gimbal.WithIOSize(4096), gimbal.WithQueueDepth(32))
	if err != nil {
		panic(err)
	}
	s.Run(500 * time.Millisecond)
	fmt.Println("reader moving data:", reader.BandwidthMBps() > 0)
	fmt.Println("writer moving data:", writer.BandwidthMBps() > 0)
	// Output:
	// reader moving data: true
	// writer moving data: true
}

// Example_faults scripts a brownout against a running JBOF and reads the
// switch's graceful-degradation signal out of the virtual view.
func Example_faults() {
	s := gimbal.NewSim(7)
	jbof, err := s.NewJBOF(gimbal.WithCondition(gimbal.Clean), gimbal.WithCapacity(1<<30))
	if err != nil {
		panic(err)
	}
	st, err := jbof.StartWorkload(0, gimbal.WithReadFraction(1), gimbal.WithQueueDepth(8),
		gimbal.WithRetry(gimbal.DefaultRetryPolicy()))
	if err != nil {
		panic(err)
	}
	err = jbof.InjectFaults(gimbal.FaultPlan{Seed: 7, Events: []gimbal.FaultEvent{
		{Kind: gimbal.SSDBrownout, At: 100 * time.Millisecond,
			Duration: 200 * time.Millisecond, SSD: 0, Factor: 200},
	}})
	if err != nil {
		panic(err)
	}
	s.Run(200 * time.Millisecond) // into the brownout window
	v, err := jbof.View(0)
	if err != nil {
		panic(err)
	}
	fmt.Println("degraded during brownout:", v.Degraded)
	fmt.Println("stream retried:", st.Retries() > 0)
	// Output:
	// degraded during brownout: true
	// stream retried: true
}
